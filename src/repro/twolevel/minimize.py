"""EXPAND / IRREDUNDANT minimization (espresso-lite).

Because the network nodes carry their complete ON-set (no external
don't-care set), a cube may expand exactly when the expanded cube is
still contained in the cover's own function — so the function is
invariant throughout and every step is checkable by simulation.

``minimize_cover`` loops EXPAND (raise literals to don't-care, largest
cubes last) and IRREDUNDANT (drop cubes covered by the rest) to a
fixpoint; ``minimize_network`` applies it node-by-node, skipping nodes
whose support exceeds a safety bound (tautology recursion is exponential
in the worst case).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.algebra.sop import Sop, sop_literal_count, sop_support
from repro.network.boolean_network import BooleanNetwork
from repro.twolevel.cover import PCover, PCube, from_sop, pcube_contains, to_sop
from repro.twolevel.tautology import cover_contains_cube


def expand_cover(cover: PCover) -> PCover:
    """Raise literals to don't-care wherever the function allows.

    Cubes are processed smallest-first (fewest don't-cares last to give
    big cubes the chance to absorb).  Single-cube containment cleanup
    runs afterwards.
    """
    cubes = list(cover.cubes)
    nvars = cover.nvars
    order = sorted(range(len(cubes)), key=lambda i: sum(1 for p in cubes[i] if p != 2))
    for idx in order:
        cube = cubes[idx]
        for var in range(nvars):
            if cube[var] == 2:
                continue
            candidate = cube[:var] + (2,) + cube[var + 1:]
            if cover_contains_cube(cubes, candidate, nvars):
                cube = candidate
        cubes[idx] = cube
    # Drop cubes now single-cube-contained in an expanded one.
    kept: List[PCube] = []
    for i, c in enumerate(cubes):
        if any(
            j != i and pcube_contains(cubes[j], c)
            and (cubes[j] != c or j < i)
            for j in range(len(cubes))
        ):
            continue
        kept.append(c)
    return PCover(cover.variables, kept)


def irredundant_cover(cover: PCover) -> PCover:
    """Remove cubes covered by the rest of the cover (greedy order)."""
    cubes = list(cover.cubes)
    nvars = cover.nvars
    # Try dropping the biggest cubes first — they are the most likely to
    # be covered by combinations of the others after expansion.
    order = sorted(
        range(len(cubes)),
        key=lambda i: -sum(1 for p in cubes[i] if p != 2),
    )
    alive = set(range(len(cubes)))
    for idx in order:
        if len(alive) == 1:
            break
        rest = [cubes[j] for j in alive if j != idx]
        if cover_contains_cube(rest, cubes[idx], nvars):
            alive.discard(idx)
    return PCover(cover.variables, [cubes[i] for i in sorted(alive)])


def minimize_cover(cover: PCover, max_passes: int = 4) -> PCover:
    """EXPAND + IRREDUNDANT to a fixpoint (bounded passes)."""
    current = cover
    for _ in range(max_passes):
        expanded = expand_cover(current)
        pruned = irredundant_cover(expanded)
        if pruned.cubes == current.cubes:
            return pruned
        current = pruned
    return current


def minimize_sop(f: Sop, table, max_support: int = 22) -> Sop:
    """Minimize one algebraic SOP; returns the (possibly smaller) SOP.

    Constants pass through; nodes with more than *max_support* base
    variables are returned unchanged (recursion safety bound).
    """
    if not f or f == ((),):
        return f
    cover = from_sop(f, table)
    if cover.nvars > max_support:
        return f
    if not cover.cubes:
        return ()  # every cube was contradictory: constant 0
    minimized = minimize_cover(cover)
    result = to_sop(minimized, table)
    # Only accept improvements — conversion round trips are exact, so
    # equality means nothing to gain.
    if sop_literal_count(result) < sop_literal_count(f) or len(result) < len(f):
        return result
    return f


def minimize_network(network: BooleanNetwork, max_support: int = 22) -> int:
    """espresso-lite over every node; returns literals saved."""
    saved = 0
    for name in list(network.nodes):
        f = network.nodes[name]
        g = minimize_sop(f, network.table, max_support=max_support)
        if g != f:
            saved += sop_literal_count(f) - sop_literal_count(g)
            network.set_expression(name, g)
    return saved
