"""Unate-recursion tautology checking (Brayton et al., the espresso core).

``is_tautology(cubes, nvars)`` decides whether a cover equals constant 1:

- a cover containing the all-don't-care cube is a tautology;
- a *unate* cover (no variable appears in both phases) is a tautology
  **only** if it contains that cube;
- otherwise split on the most binate variable and recurse on both
  Shannon cofactors.

Containment (cube ⊆ cover) reduces to tautology of the cover's cofactor
against the cube — the primitive EXPAND and IRREDUNDANT are built on.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.twolevel.cover import PCube, cofactor, cofactor_by_cube


def _phase_profile(cubes: Sequence[PCube], nvars: int) -> List[Tuple[int, int]]:
    """(count of 0-phase, count of 1-phase) per variable."""
    zeros = [0] * nvars
    ones = [0] * nvars
    for c in cubes:
        for v, p in enumerate(c):
            if p == 0:
                zeros[v] += 1
            elif p == 1:
                ones[v] += 1
    return list(zip(zeros, ones))


def _most_binate(profile: List[Tuple[int, int]]) -> Optional[int]:
    """The variable appearing in both phases the most; None if unate."""
    best_var = None
    best_score = 0
    for v, (z, o) in enumerate(profile):
        if z and o:
            score = z + o
            if score > best_score:
                best_score = score
                best_var = v
    return best_var


def is_tautology(cubes: Sequence[PCube], nvars: int) -> bool:
    """True iff the cover's function is constant 1."""
    if not cubes:
        return False
    universal = (2,) * nvars
    if universal in cubes:
        return True
    # Quick necessary condition: every variable column must offer both
    # phases or a don't care in some cube; if any variable appears in
    # only one phase in *every* cube, minterms with the other phase and
    # all other vars arbitrary are uncovered... (only valid when the
    # variable has no don't-care occurrences).
    profile = _phase_profile(cubes, nvars)
    for v, (z, o) in enumerate(profile):
        if z + o == len(cubes) and (z == 0 or o == 0):
            return False
    split = _most_binate(profile)
    if split is None:
        # Unate cover: tautology iff it contains the universal cube,
        # which we already checked.
        return False
    return is_tautology(cofactor(cubes, split, 0), nvars) and is_tautology(
        cofactor(cubes, split, 1), nvars
    )


def cover_contains_cube(
    cubes: Sequence[PCube], cube: PCube, nvars: int
) -> bool:
    """cube ⊆ cover ⇔ the cover cofactored against the cube is a tautology."""
    return is_tautology(cofactor_by_cube(cubes, cube), nvars)
