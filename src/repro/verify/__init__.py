"""Differential fuzzing and invariant auditing (the correctness backstop).

Algebraic factorization is function-preserving, so simulation is a
universal oracle: run any factorization path on a random network and the
primary outputs must not change.  This package industrializes that
oracle:

- :mod:`~repro.verify.generator` — seeded random-network families
  (dense, sparse, duplicate-cube, shared-kernel, degenerate),
- :mod:`~repro.verify.paths` — the registry of factorization paths ×
  rectangle cores driven differentially,
- :mod:`~repro.verify.fuzz` — the fuzz driver (equivalence, literal-
  count bounds, cross-core determinism),
- :mod:`~repro.verify.shrink` — the greedy failure minimizer,
- :mod:`~repro.verify.corpus` — minimal-repro persistence and replay
  (``tests/fuzz_corpus/``),
- :mod:`~repro.verify.audit` — the ``REPRO_CHECK=1`` sanitizer-style
  invariant audits wired into :class:`KCMatrix`/:class:`CubeStateStore`.

Only :mod:`~repro.verify.audit` is imported eagerly — it is a dependency
of the rectangle core itself; everything else loads lazily so importing
:mod:`repro.rectangles` does not drag in the parallel algorithms.
"""

from repro.verify import audit
from repro.verify.audit import InvariantViolation, set_audits

_LAZY = {
    "random_network": "repro.verify.generator",
    "FAMILIES": "repro.verify.generator",
    "FactorPath": "repro.verify.paths",
    "all_paths": "repro.verify.paths",
    "get_path": "repro.verify.paths",
    "rect_core": "repro.verify.paths",
    "FuzzConfig": "repro.verify.fuzz",
    "FuzzFailure": "repro.verify.fuzz",
    "FuzzReport": "repro.verify.fuzz",
    "run_fuzz": "repro.verify.fuzz",
    "check_path": "repro.verify.fuzz",
    "shrink_network": "repro.verify.shrink",
    "save_repro": "repro.verify.corpus",
    "load_corpus": "repro.verify.corpus",
    "replay_entry": "repro.verify.corpus",
    "CorpusEntry": "repro.verify.corpus",
}

__all__ = ["audit", "InvariantViolation", "set_audits"] + sorted(_LAZY)


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
