"""Opt-in invariant audits (sanitizer-style, ``REPRO_CHECK=1``).

The rectangle cores and the speculative cube-state protocol maintain
redundant indexes for speed: ``KCMatrix`` keeps ``entries``/``by_row``/
``by_col``/``node_rows``/``col_of_cube`` in lockstep, compiles a dense
:class:`~repro.rectangles.bitview.BitKCView` mirror of the whole
structure, and :class:`~repro.parallel.cubestate.CubeStateStore` tracks
per-cube claims that must never double-cover.  A bug in any of that
bookkeeping silently corrupts factorization results long before an
equivalence check can localize it.

This module provides the checks and the switch.  Audits are **off by
default** — the hot paths pay one predicate call per mutation — and are
enabled process-wide by ``REPRO_CHECK=1`` in the environment (read once,
lazily) or :func:`set_audits` from code.  When enabled:

- every :class:`KCMatrix` mutator validates the delta it just applied
  (O(delta), not O(matrix)),
- splice-style bulk operations (``merge``, ``submatrix_columns``) and
  every bitset-view compilation validate the full structure, including
  sparse/bitview parity,
- every ``CubeStateStore`` operation validates the records it touched
  (claim/value/owner consistency — the no-double-cover invariant).

Violations raise :class:`InvariantViolation` with a message naming the
index that disagreed.  The fuzz driver (:mod:`repro.verify.fuzz`) runs
with audits on under ``repro fuzz --check``.

This module must stay import-light (``os`` plus :mod:`repro.algebra`):
it is imported by :mod:`repro.rectangles.kcmatrix` at module load.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Tuple

from repro.algebra.cube import cube_union


def _popcount(mask: int) -> int:
    return bin(mask).count("1")


popcount = getattr(int, "bit_count", None) or _popcount

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.parallel.cubestate import CubeRecord, CubeRef, CubeStateStore
    from repro.rectangles.kcmatrix import KCMatrix

ENV_VAR = "REPRO_CHECK"

#: Tri-state cache: None = not yet read from the environment.
_enabled = None


class InvariantViolation(AssertionError):
    """An internal data-structure invariant was found broken."""


def enabled() -> bool:
    """Whether audits are on (``REPRO_CHECK=1`` or :func:`set_audits`)."""
    global _enabled
    if _enabled is None:
        _enabled = os.environ.get(ENV_VAR, "0") not in ("", "0")
    return _enabled


def set_audits(on) -> None:
    """Force audits on/off for this process (``None`` re-reads the env)."""
    global _enabled
    _enabled = None if on is None else bool(on)


def _fail(msg: str) -> None:
    raise InvariantViolation(msg)


# ----------------------------------------------------------------------
# KCMatrix: incremental (per-mutation) checks
# ----------------------------------------------------------------------

def audit_row_added(mat: "KCMatrix", label: int) -> None:
    """Post-condition of ``add_row``: indexes agree on the new row."""
    info = mat.rows.get(label)
    if info is None:
        _fail(f"add_row({label}): row missing from rows")
    if mat.by_row.get(label) != set():
        _fail(f"add_row({label}): by_row not initialized empty")
    if label not in mat.node_rows.get(info.node, ()):
        _fail(f"add_row({label}): node_rows[{info.node!r}] missing the row")


def audit_col_added(mat: "KCMatrix", label: int) -> None:
    """Post-condition of ``ensure_col``: cols/col_of_cube/by_col agree."""
    cube = mat.cols.get(label)
    if cube is None:
        _fail(f"ensure_col({label}): column missing from cols")
    if mat.col_of_cube.get(cube) != label:
        _fail(f"ensure_col({label}): col_of_cube inverse disagrees")
    if label not in mat.by_col:
        _fail(f"ensure_col({label}): by_col not initialized")


def audit_entry_added(mat: "KCMatrix", row: int, col: int) -> None:
    """Post-condition of ``add_entry``: cell, adjacency and cube agree."""
    cube = mat.entries.get((row, col))
    if cube is None:
        _fail(f"add_entry({row}, {col}): entry missing")
    if col not in mat.by_row.get(row, ()):
        _fail(f"add_entry({row}, {col}): by_row adjacency missing")
    if row not in mat.by_col.get(col, ()):
        _fail(f"add_entry({row}, {col}): by_col adjacency missing")
    expect = cube_union(mat.rows[row].cokernel, mat.cols[col])
    if cube != expect:
        _fail(
            f"add_entry({row}, {col}): entry cube {cube} != "
            f"cokernel ∪ kernel-cube {expect}"
        )


def audit_row_removed(mat: "KCMatrix", label: int) -> None:
    """Post-condition of ``remove_row``: no index still references it."""
    if label in mat.rows or label in mat.by_row:
        _fail(f"remove_row({label}): row survives in rows/by_row")
    for node, rows in mat.node_rows.items():
        if label in rows:
            _fail(f"remove_row({label}): node_rows[{node!r}] still lists it")
        if not rows:
            _fail(f"remove_row({label}): empty node_rows[{node!r}] kept")
    for rows in mat.by_col.values():
        if label in rows:
            _fail(f"remove_row({label}): by_col still lists the row")


def audit_col_removed(mat: "KCMatrix", label: int) -> None:
    """Post-condition of ``remove_col``: no index still references it."""
    if label in mat.cols or label in mat.by_col:
        _fail(f"remove_col({label}): column survives in cols/by_col")
    if label in mat.col_of_cube.values():
        _fail(f"remove_col({label}): col_of_cube still maps to it")
    for cols in mat.by_row.values():
        if label in cols:
            _fail(f"remove_col({label}): by_row still lists the column")


# ----------------------------------------------------------------------
# KCMatrix: full-structure check
# ----------------------------------------------------------------------

def audit_kcmatrix(mat: "KCMatrix") -> None:
    """Full consistency of ``entries`` vs ``by_row``/``by_col`` vs
    ``node_rows`` vs ``col_of_cube`` (O(rows + cols + entries))."""
    if set(mat.by_row) != set(mat.rows):
        _fail("by_row keys != rows keys")
    if set(mat.by_col) != set(mat.cols):
        _fail("by_col keys != cols keys")
    # entries ⊆ rows × cols, adjacency closed both ways, cubes correct.
    n_adj = 0
    for (r, c), cube in mat.entries.items():
        if r not in mat.rows:
            _fail(f"entry ({r}, {c}) references unknown row")
        if c not in mat.cols:
            _fail(f"entry ({r}, {c}) references unknown column")
        if c not in mat.by_row[r] or r not in mat.by_col[c]:
            _fail(f"entry ({r}, {c}) missing from adjacency")
        expect = cube_union(mat.rows[r].cokernel, mat.cols[c])
        if cube != expect:
            _fail(f"entry ({r}, {c}) cube {cube} != {expect}")
    for r, cols in mat.by_row.items():
        n_adj += len(cols)
        for c in cols:
            if (r, c) not in mat.entries:
                _fail(f"by_row lists ({r}, {c}) with no entry")
    if n_adj != len(mat.entries):
        _fail("by_row adjacency count != entry count")
    if sum(len(rows) for rows in mat.by_col.values()) != len(mat.entries):
        _fail("by_col adjacency count != entry count")
    # col_of_cube is the exact inverse of cols.
    if len(mat.col_of_cube) != len(mat.cols):
        _fail("col_of_cube size != cols size")
    for cube, label in mat.col_of_cube.items():
        if mat.cols.get(label) != cube:
            _fail(f"col_of_cube[{cube}] = {label} but cols disagrees")
    # node_rows is the exact row partition by node.
    expect_nodes: dict = {}
    for label, info in mat.rows.items():
        expect_nodes.setdefault(info.node, set()).add(label)
    if mat.node_rows != expect_nodes:
        _fail("node_rows index disagrees with rows")


def audit_bitview(mat: "KCMatrix", view) -> None:
    """Sparse/bitview parity: the dense compilation mirrors the matrix."""
    if view.row_labels != sorted(mat.rows):
        _fail("bitview row_labels != sorted matrix rows")
    if view.col_labels != sorted(mat.cols):
        _fail("bitview col_labels != sorted matrix cols")
    if view.num_entries != mat.num_entries:
        _fail(
            f"bitview has {view.num_entries} cells, "
            f"matrix has {mat.num_entries} entries"
        )
    n_cells = sum(len(rcells) for rcells in view.cells)
    if n_cells != mat.num_entries:
        _fail(f"bitview has {n_cells} cells, matrix has {mat.num_entries} entries")
    for (r, c), cube in mat.entries.items():
        i = view.row_pos.get(r)
        j = view.col_pos.get(c)
        if i is None or j is None:
            _fail(f"bitview lost entry ({r}, {c})")
        eid = view.cells[i].get(j)
        if eid is None:
            _fail(f"bitview has no cell for entry ({r}, {c})")
        if view.entry_cubes[eid] != cube:
            _fail(f"bitview cell ({r}, {c}) cube disagrees with sparse entry")
        if not (view.row_cols[i] >> j) & 1:
            _fail(f"bitview row mask misses ({r}, {c})")
        if not (view.col_rows[j] >> i) & 1:
            _fail(f"bitview col mask misses ({r}, {c})")
    for i, mask in enumerate(view.row_cols):
        if popcount(mask) != len(view.cells[i]):
            _fail(f"bitview row mask popcount disagrees at row pos {i}")
    for i, lab in enumerate(view.row_labels):
        if view.row_cost[i] != len(mat.rows[lab].cokernel) + 1:
            _fail(f"bitview row_cost[{lab}] disagrees with cokernel size")
    for j, lab in enumerate(view.col_labels):
        if view.col_cost[j] != len(mat.cols[lab]):
            _fail(f"bitview col_cost[{lab}] disagrees with kernel-cube size")


# ----------------------------------------------------------------------
# CubeStateStore checks
# ----------------------------------------------------------------------

def audit_cube_record(ref: "CubeRef", rec: "CubeRecord") -> None:
    """Field consistency of one speculative cube record (Table 5).

    FREE records carry no owner; COVERED records carry a claiming
    processor and the saved true value; DIVIDED records are worth zero
    forever.  ``cover`` must never reassign a COVERED cube to a second
    owner without an intervening ``uncover`` — with this check at every
    mutation, a double-cover shows up as an owner/status inconsistency
    at the exact operation that caused it.
    """
    from repro.parallel.cubestate import CubeStatus

    if rec.status is CubeStatus.FREE:
        if rec.owner != -1:
            _fail(f"FREE cube {ref} still owned by processor {rec.owner}")
    elif rec.status is CubeStatus.COVERED:
        if rec.owner < 0:
            _fail(f"COVERED cube {ref} has no owner")
        if rec.trueval != len(ref[1]):
            _fail(
                f"COVERED cube {ref} saved value {rec.trueval} != "
                f"cube size {len(ref[1])}"
            )
    else:  # DIVIDED
        if rec.trueval != 0:
            _fail(f"DIVIDED cube {ref} keeps nonzero value {rec.trueval}")


def audit_cover_transition(
    ref: "CubeRef", before: Tuple[object, int], rec: "CubeRecord", pid: int
) -> None:
    """No-double-cover: ``cover`` may claim FREE cubes or refresh its own
    claim, but must leave foreign claims and DIVIDED cubes untouched."""
    from repro.parallel.cubestate import CubeStatus

    status0, owner0 = before
    if status0 is CubeStatus.DIVIDED and rec.status is not CubeStatus.DIVIDED:
        _fail(f"cover({ref}) by {pid} resurrected a DIVIDED cube")
    if (
        status0 is CubeStatus.COVERED
        and owner0 not in (pid, -1)
        and rec.owner != owner0
    ):
        _fail(
            f"double cover of {ref}: processor {pid} stole the claim "
            f"of processor {owner0}"
        )
    audit_cube_record(ref, rec)


def audit_cubestate(store: "CubeStateStore") -> None:
    """Full-store sweep of :func:`audit_cube_record`."""
    for ref, rec in store._recs.items():
        audit_cube_record(ref, rec)
