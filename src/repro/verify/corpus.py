"""Persistence and replay of minimal fuzz repros.

Every shrunk failure becomes two files in a corpus directory (the
repository keeps one under ``tests/fuzz_corpus/``):

- ``<stem>.eqn`` — the minimal network in equation format,
- ``<stem>.json`` — replay coordinates: family, generator seed, path,
  core, failure kind, a human-readable detail string, and — for chaos
  findings — the fault plan spec and injector seed.

The tier-1 suite replays the whole corpus on every run
(``tests/verify/test_corpus_replay.py``), so a repro added once is a
permanent regression test: the recorded path × core must pass all fuzz
oracles on the recorded network forever after the fix.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.network.boolean_network import BooleanNetwork
from repro.network.eqn import read_eqn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.verify.fuzz import CheckOutcome, FuzzFailure


@dataclass
class CorpusEntry:
    """One replayable repro: the network plus its replay coordinates."""

    stem: str
    network: BooleanNetwork
    path: str
    core: Optional[str]
    family: str = ""
    seed: int = 0
    kind: str = ""
    detail: str = ""
    fault_plan: Optional[str] = None    # chaos repros replay this plan
    fault_seed: int = 0

    def describe(self) -> str:
        core = f"/{self.core}" if self.core else ""
        chaos = f" faults=[{self.fault_plan}]" if self.fault_plan else ""
        return f"{self.stem}: {self.path}{core}{chaos} ({self.kind or 'regression'})"


def _stem_for(failure: "FuzzFailure") -> str:
    raw = f"{failure.family}_s{failure.seed}_{failure.path}_" \
          f"{failure.core or 'any'}_{failure.kind}"
    if failure.fault_plan:
        raw += f"_chaos{failure.fault_seed}"
    return re.sub(r"[^A-Za-z0-9_.-]", "-", raw)


def save_repro(directory: str, failure: "FuzzFailure") -> str:
    """Write one failure as a corpus entry; return the ``.eqn`` path."""
    os.makedirs(directory, exist_ok=True)
    stem = _stem_for(failure)
    eqn_path = os.path.join(directory, stem + ".eqn")
    with open(eqn_path, "w") as fh:
        fh.write(failure.eqn)
    meta = {
        "family": failure.family,
        "seed": failure.seed,
        "path": failure.path,
        "core": failure.core,
        "kind": failure.kind,
        "detail": failure.detail,
        "shrunk": failure.shrunk,
    }
    if failure.fault_plan:
        meta["fault_plan"] = failure.fault_plan
        meta["fault_seed"] = failure.fault_seed
    with open(os.path.join(directory, stem + ".json"), "w") as fh:
        json.dump(meta, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return eqn_path


def load_corpus(directory: str) -> List[CorpusEntry]:
    """Read every ``.eqn``/``.json`` pair under *directory* (sorted)."""
    entries: List[CorpusEntry] = []
    if not os.path.isdir(directory):
        return entries
    for fname in sorted(os.listdir(directory)):
        if not fname.endswith(".eqn"):
            continue
        stem = fname[:-4]
        meta_path = os.path.join(directory, stem + ".json")
        meta = {}
        if os.path.exists(meta_path):
            with open(meta_path) as fh:
                meta = json.load(fh)
        with open(os.path.join(directory, fname)) as fh:
            network = read_eqn(fh.read(), name=stem)
        entries.append(
            CorpusEntry(
                stem=stem,
                network=network,
                path=meta.get("path", "seq-pingpong"),
                core=meta.get("core"),
                family=meta.get("family", ""),
                seed=int(meta.get("seed", 0)),
                kind=meta.get("kind", ""),
                detail=meta.get("detail", ""),
                fault_plan=meta.get("fault_plan"),
                fault_seed=int(meta.get("fault_seed", 0)),
            )
        )
    return entries


def replay_entry(entry: CorpusEntry, vectors: int = 256) -> "CheckOutcome":
    """Re-run the recorded path × core; ``None`` means all oracles pass.

    When the entry records no core (cross-core findings), both cores are
    replayed and the first failing outcome is returned.  Entries that
    record a fault plan replay it with the recorded seed, so a chaos
    repro exercises the exact recovery path that once failed.
    """
    from repro.verify.fuzz import check_path
    from repro.verify.paths import all_cores, get_path

    path = get_path(entry.path)
    cores = [entry.core] if entry.core else all_cores()
    for core in cores:
        outcome, _ = check_path(entry.network, path, core, vectors=vectors,
                                faults=entry.fault_plan,
                                fault_seed=entry.fault_seed)
        if outcome is not None:
            return outcome
    return None
