"""The differential fuzz driver.

One fuzz *run* generates a seeded random network and pushes it through
every registered factorization path × rectangle core, holding each
result against four oracles:

1. **Structure** — the result network still validates (acyclic, closed
   signal references) and preserves the interface: same primary inputs,
   all original primary outputs still defined.
2. **Function** — exact equivalence by exhaustive truth-table sweep
   (every generated network stays within the 8-input cap; networks
   loaded from elsewhere fall back to the Monte-Carlo check).
3. **Literal-count bounds** — factorization must never *increase* the
   SOP literal count, and must not erase a non-trivial network.
4. **Cross-core determinism** — the bit and set rectangle cores promise
   byte-identical search streams, so a deterministic path must reach the
   same final literal count under both cores.

With ``faults=True`` every machine-backed path is additionally re-run
under a seeded random crash+drop schedule
(:meth:`repro.faults.FaultPlan.random_single`), adding two oracles:
every injected fault must carry a paired recovery record, and the
post-recovery literal count must stay within 5% of the fault-free
result for the same path × core.

Failures are captured as :class:`FuzzFailure` records carrying the
``.eqn`` text of the offending network and everything needed to replay:
family, seed, path, core — plus the fault plan and its seed for chaos
findings.  With ``shrink=True`` each failure is first minimized
(:mod:`repro.verify.shrink`) and written as a corpus entry
(:mod:`repro.verify.corpus`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.network.boolean_network import BooleanNetwork
from repro.network.eqn import write_eqn
from repro.network.simulate import (
    exhaustive_equivalence_check,
    random_equivalence_check,
)
from repro.verify import audit
from repro.verify.generator import MAX_INPUTS, family_for_run, random_network
from repro.verify.paths import FactorPath, all_cores, all_paths, get_path

#: (kind, detail) — ``None`` means the check passed.
CheckOutcome = Optional[Tuple[str, str]]


def check_path(
    network: BooleanNetwork,
    path: FactorPath,
    core: Optional[str] = None,
    vectors: int = 256,
    faults=None,
    fault_seed: int = 0,
) -> Tuple[CheckOutcome, Optional[int]]:
    """Run one path × core over *network* and apply the per-path oracles.

    Returns ``(failure, final_literal_count)``; the count is ``None``
    when the run itself failed and is used by the caller's cross-core
    comparison.

    With *faults* (a :class:`~repro.faults.plan.FaultPlan` or its spec
    string) the path runs under a fresh injector seeded with
    *fault_seed*, and a fifth oracle applies: every injected crash /
    drop / corrupt / dup fault must have a paired ``recovery:*`` record
    once the run completes ("fault-recovery" failures).
    """
    injector = None
    if faults is not None and path.supports_faults:
        from repro.faults import FaultInjector, FaultPlan

        plan = faults if isinstance(faults, FaultPlan) else FaultPlan.parse(str(faults))
        if not plan.is_empty():
            injector = FaultInjector(plan, seed=fault_seed)
    initial = network.literal_count()
    try:
        result = path.run(network, core, faults=injector)
        result.validate()
    except Exception as exc:  # noqa: BLE001 - any escape is a finding
        return ("exception", f"{type(exc).__name__}: {exc}"), None
    if injector is not None:
        # Slow windows that outlive the run have nothing to absorb them;
        # only discrete faults are held to the pairing contract.
        bad = [r for r in injector.unrecovered() if r.kind != "slow"]
        if bad:
            what = "; ".join(f"{r.kind}@op{r.op} pid={r.pid}" for r in bad)
            return ("fault-recovery", f"unrecovered fault(s): {what}"), None
    if list(result.inputs) != list(network.inputs):
        return ("interface", "primary inputs changed"), None
    missing = [o for o in network.outputs
               if o not in result.nodes and not result.is_input(o)]
    if missing:
        return ("interface", f"primary outputs lost: {missing}"), None
    final = result.literal_count()
    if final > initial:
        return ("lc-bound", f"literal count grew {initial} -> {final}"), final
    if initial > 0 and final == 0:
        return ("lc-bound", f"non-trivial network erased ({initial} -> 0)"), final
    try:
        if len(network.inputs) <= MAX_INPUTS:
            same = exhaustive_equivalence_check(
                network, result, outputs=network.outputs
            )
        else:
            same = random_equivalence_check(
                network, result, vectors=vectors, outputs=network.outputs
            )
    except Exception as exc:  # noqa: BLE001
        return ("exception", f"oracle raised {type(exc).__name__}: {exc}"), final
    if not same:
        return ("equivalence", f"primary outputs differ (LC {initial} -> {final})"), final
    return None, final


@dataclass
class FuzzFailure:
    """One oracle violation, replayable from the recorded coordinates."""

    run: int
    seed: int
    family: str
    path: str
    core: Optional[str]
    kind: str
    detail: str
    eqn: str
    shrunk: bool = False
    repro_file: Optional[str] = None
    fault_plan: Optional[str] = None    # spec string; None = fault-free check
    fault_seed: int = 0

    def describe(self) -> str:
        core = f"/{self.core}" if self.core else ""
        chaos = (f" under faults [{self.fault_plan} seed={self.fault_seed}]"
                 if self.fault_plan else "")
        tail = f" [repro: {self.repro_file}]" if self.repro_file else ""
        return (
            f"run {self.run} (family={self.family}, seed={self.seed}) "
            f"{self.path}{core}{chaos}: {self.kind} — {self.detail}{tail}"
        )


@dataclass
class FuzzConfig:
    """Knobs of one fuzz campaign (all deterministic in ``seed``)."""

    runs: int = 25
    seed: int = 0
    paths: Optional[Sequence[str]] = None   # None → every registered path
    cores: Optional[Sequence[str]] = None   # None → ("bit", "set")
    family: Optional[str] = None            # None → rotate all families
    shrink: bool = False
    repro_dir: Optional[str] = None         # where shrunk repros land
    audits: bool = False                    # REPRO_CHECK-style audits
    vectors: int = 256
    faults: bool = False                    # chaos mode: re-run parallel
    fault_seed: int = 0                     # paths under random fault plans
    progress: Optional[Callable[[str], None]] = None


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign."""

    runs: int = 0
    checks: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    lc_by_path: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"fuzz: {self.runs} runs, {self.checks} path×core checks, "
            f"{len(self.failures)} failure(s)"
        ]
        for f in self.failures:
            lines.append("  FAIL " + f.describe())
        return "\n".join(lines)


def _shrink_failure(
    network: BooleanNetwork,
    path: FactorPath,
    core: Optional[str],
    kind: str,
    vectors: int,
    faults=None,
    fault_seed: int = 0,
) -> BooleanNetwork:
    from repro.verify.shrink import shrink_network

    def still_fails(candidate: BooleanNetwork) -> bool:
        outcome, _ = check_path(candidate, path, core, vectors=vectors,
                                faults=faults, fault_seed=fault_seed)
        return outcome is not None and outcome[0] == kind

    return shrink_network(network, still_fails)


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Execute a fuzz campaign; never raises on findings, only reports."""
    paths = [get_path(n) for n in config.paths] if config.paths else all_paths()
    cores = list(config.cores) if config.cores else all_cores()
    report = FuzzReport()
    say = config.progress or (lambda _msg: None)

    prev_audits = audit._enabled
    if config.audits:
        audit.set_audits(True)
    try:
        for run in range(config.runs):
            seed = config.seed + run
            family = config.family or family_for_run(run)
            net = random_network(seed, family=family)
            say(f"run {run}: family={family} seed={seed} "
                f"({len(net.inputs)} in / {len(net.nodes)} nodes / "
                f"LC {net.literal_count()})")
            lc_by_core: Dict[Tuple[str, str], int] = {}
            for path in paths:
                for core in cores:
                    # Trace context: a traced campaign tags every span
                    # with (run, seed, family, path, core) so a failing
                    # check ships with its exact trace slice.
                    with _obs.context(
                        track=f"fuzz:{run}", run=run, seed=seed,
                        family=family, path=path.name, core=core,
                    ), _obs.span("fuzz-check", cat="verify"):
                        outcome, final = check_path(
                            net, path, core, vectors=config.vectors
                        )
                    report.checks += 1
                    if final is not None:
                        lc_by_core[(path.name, core)] = final
                        report.lc_by_path[path.name] = final
                    if outcome is None:
                        continue
                    kind, detail = outcome
                    failure = FuzzFailure(
                        run=run, seed=seed, family=family,
                        path=path.name, core=core,
                        kind=kind, detail=detail, eqn=write_eqn(net),
                    )
                    _finalize_failure(failure, net, path, core, config)
                    report.failures.append(failure)
                    say("  " + failure.describe())
            # Cross-core determinism: a deterministic path must land on
            # the same literal count under every core.
            for path in paths:
                if not path.deterministic:
                    continue
                finals = {
                    core: lc_by_core[(path.name, core)]
                    for core in cores
                    if (path.name, core) in lc_by_core
                }
                if len(set(finals.values())) > 1:
                    failure = FuzzFailure(
                        run=run, seed=seed, family=family,
                        path=path.name, core=None,
                        kind="core-mismatch",
                        detail=f"final literal counts diverge: {finals}",
                        eqn=write_eqn(net),
                    )
                    report.failures.append(failure)
                    say("  " + failure.describe())
            if config.faults:
                _chaos_sweep(report, config, run, seed, family, net,
                             paths, cores, lc_by_core, say)
            report.runs += 1
    finally:
        audit.set_audits(prev_audits)
    return report


def _chaos_sweep(
    report: FuzzReport,
    config: FuzzConfig,
    run: int,
    seed: int,
    family: str,
    net: BooleanNetwork,
    paths: Sequence[FactorPath],
    cores: Sequence[str],
    lc_by_core: Dict[Tuple[str, str], int],
    say: Callable[[str], None],
) -> None:
    """Re-run the machine-backed paths under a random single-crash plan.

    One :meth:`FaultPlan.random_single` schedule per (run, path) —
    deterministic in ``config.fault_seed + run`` — and two extra oracles
    on top of the usual five: recovery must leave the final literal
    count within 5% of the fault-free result for the same path × core
    (crash recovery re-deals work, so exact equality is not promised,
    but near-misses bound how much quality a failure may cost), and
    deterministic paths must agree across cores under the same plan.
    """
    from repro.faults import FaultPlan

    for path in paths:
        if not path.supports_faults:
            continue
        fseed = config.fault_seed + run
        plan = FaultPlan.random_single(fseed, path.nprocs)
        spec = plan.render()
        chaos_lc: Dict[str, int] = {}
        for core in cores:
            with _obs.context(
                track=f"fuzz:{run}", run=run, seed=seed, family=family,
                path=path.name, core=core, faults=spec,
            ), _obs.span("fuzz-chaos-check", cat="verify"):
                outcome, final = check_path(
                    net, path, core, vectors=config.vectors,
                    faults=plan, fault_seed=fseed,
                )
            report.checks += 1
            if outcome is None and final is not None:
                chaos_lc[core] = final
                fault_free = lc_by_core.get((path.name, core))
                # 5% relative, with an absolute floor of one small
                # rectangle: on tiny fuzz networks a single diverged
                # greedy choice costs a handful of literals, which is
                # recovery working as designed; the relative bound is
                # what matters on real circuits.
                if fault_free is not None and fault_free > 0 \
                        and final - fault_free > max(fault_free * 0.05, 5):
                    outcome = ("fault-quality",
                               f"post-recovery LC {final} exceeds "
                               f"fault-free {fault_free} by more than 5%")
            if outcome is None:
                continue
            kind, detail = outcome
            failure = FuzzFailure(
                run=run, seed=seed, family=family,
                path=path.name, core=core, kind=kind, detail=detail,
                eqn=write_eqn(net), fault_plan=spec, fault_seed=fseed,
            )
            _finalize_failure(failure, net, path, core, config)
            report.failures.append(failure)
            say("  " + failure.describe())
        if path.deterministic and len(set(chaos_lc.values())) > 1:
            failure = FuzzFailure(
                run=run, seed=seed, family=family,
                path=path.name, core=None, kind="core-mismatch",
                detail=f"literal counts diverge under faults: {chaos_lc}",
                eqn=write_eqn(net), fault_plan=spec, fault_seed=fseed,
            )
            report.failures.append(failure)
            say("  " + failure.describe())


def _finalize_failure(
    failure: FuzzFailure,
    net: BooleanNetwork,
    path: FactorPath,
    core: Optional[str],
    config: FuzzConfig,
) -> None:
    """Optionally shrink the failing network and persist a repro entry."""
    if not config.shrink:
        return
    try:
        small = _shrink_failure(net, path, core, failure.kind, config.vectors,
                                faults=failure.fault_plan,
                                fault_seed=failure.fault_seed)
    except Exception:  # noqa: BLE001 - shrinking must never mask the find
        return
    failure.eqn = write_eqn(small)
    failure.shrunk = True
    if config.repro_dir:
        from repro.verify.corpus import save_repro

        failure.repro_file = save_repro(config.repro_dir, failure)
