"""The differential fuzz driver.

One fuzz *run* generates a seeded random network and pushes it through
every registered factorization path × rectangle core, holding each
result against four oracles:

1. **Structure** — the result network still validates (acyclic, closed
   signal references) and preserves the interface: same primary inputs,
   all original primary outputs still defined.
2. **Function** — exact equivalence by exhaustive truth-table sweep
   (every generated network stays within the 8-input cap; networks
   loaded from elsewhere fall back to the Monte-Carlo check).
3. **Literal-count bounds** — factorization must never *increase* the
   SOP literal count, and must not erase a non-trivial network.
4. **Cross-core determinism** — the bit and set rectangle cores promise
   byte-identical search streams, so a deterministic path must reach the
   same final literal count under both cores.

Failures are captured as :class:`FuzzFailure` records carrying the
``.eqn`` text of the offending network and everything needed to replay:
family, seed, path, core.  With ``shrink=True`` each failure is first
minimized (:mod:`repro.verify.shrink`) and written as a corpus entry
(:mod:`repro.verify.corpus`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs as _obs
from repro.network.boolean_network import BooleanNetwork
from repro.network.eqn import write_eqn
from repro.network.simulate import (
    exhaustive_equivalence_check,
    random_equivalence_check,
)
from repro.verify import audit
from repro.verify.generator import MAX_INPUTS, family_for_run, random_network
from repro.verify.paths import FactorPath, all_cores, all_paths, get_path

#: (kind, detail) — ``None`` means the check passed.
CheckOutcome = Optional[Tuple[str, str]]


def check_path(
    network: BooleanNetwork,
    path: FactorPath,
    core: Optional[str] = None,
    vectors: int = 256,
) -> Tuple[CheckOutcome, Optional[int]]:
    """Run one path × core over *network* and apply the per-path oracles.

    Returns ``(failure, final_literal_count)``; the count is ``None``
    when the run itself failed and is used by the caller's cross-core
    comparison.
    """
    initial = network.literal_count()
    try:
        result = path.run(network, core)
        result.validate()
    except Exception as exc:  # noqa: BLE001 - any escape is a finding
        return ("exception", f"{type(exc).__name__}: {exc}"), None
    if list(result.inputs) != list(network.inputs):
        return ("interface", "primary inputs changed"), None
    missing = [o for o in network.outputs
               if o not in result.nodes and not result.is_input(o)]
    if missing:
        return ("interface", f"primary outputs lost: {missing}"), None
    final = result.literal_count()
    if final > initial:
        return ("lc-bound", f"literal count grew {initial} -> {final}"), final
    if initial > 0 and final == 0:
        return ("lc-bound", f"non-trivial network erased ({initial} -> 0)"), final
    try:
        if len(network.inputs) <= MAX_INPUTS:
            same = exhaustive_equivalence_check(
                network, result, outputs=network.outputs
            )
        else:
            same = random_equivalence_check(
                network, result, vectors=vectors, outputs=network.outputs
            )
    except Exception as exc:  # noqa: BLE001
        return ("exception", f"oracle raised {type(exc).__name__}: {exc}"), final
    if not same:
        return ("equivalence", f"primary outputs differ (LC {initial} -> {final})"), final
    return None, final


@dataclass
class FuzzFailure:
    """One oracle violation, replayable from the recorded coordinates."""

    run: int
    seed: int
    family: str
    path: str
    core: Optional[str]
    kind: str
    detail: str
    eqn: str
    shrunk: bool = False
    repro_file: Optional[str] = None

    def describe(self) -> str:
        core = f"/{self.core}" if self.core else ""
        tail = f" [repro: {self.repro_file}]" if self.repro_file else ""
        return (
            f"run {self.run} (family={self.family}, seed={self.seed}) "
            f"{self.path}{core}: {self.kind} — {self.detail}{tail}"
        )


@dataclass
class FuzzConfig:
    """Knobs of one fuzz campaign (all deterministic in ``seed``)."""

    runs: int = 25
    seed: int = 0
    paths: Optional[Sequence[str]] = None   # None → every registered path
    cores: Optional[Sequence[str]] = None   # None → ("bit", "set")
    family: Optional[str] = None            # None → rotate all families
    shrink: bool = False
    repro_dir: Optional[str] = None         # where shrunk repros land
    audits: bool = False                    # REPRO_CHECK-style audits
    vectors: int = 256
    progress: Optional[Callable[[str], None]] = None


@dataclass
class FuzzReport:
    """Outcome of a fuzz campaign."""

    runs: int = 0
    checks: int = 0
    failures: List[FuzzFailure] = field(default_factory=list)
    lc_by_path: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    def render(self) -> str:
        lines = [
            f"fuzz: {self.runs} runs, {self.checks} path×core checks, "
            f"{len(self.failures)} failure(s)"
        ]
        for f in self.failures:
            lines.append("  FAIL " + f.describe())
        return "\n".join(lines)


def _shrink_failure(
    network: BooleanNetwork,
    path: FactorPath,
    core: Optional[str],
    kind: str,
    vectors: int,
) -> BooleanNetwork:
    from repro.verify.shrink import shrink_network

    def still_fails(candidate: BooleanNetwork) -> bool:
        outcome, _ = check_path(candidate, path, core, vectors=vectors)
        return outcome is not None and outcome[0] == kind

    return shrink_network(network, still_fails)


def run_fuzz(config: FuzzConfig) -> FuzzReport:
    """Execute a fuzz campaign; never raises on findings, only reports."""
    paths = [get_path(n) for n in config.paths] if config.paths else all_paths()
    cores = list(config.cores) if config.cores else all_cores()
    report = FuzzReport()
    say = config.progress or (lambda _msg: None)

    prev_audits = audit._enabled
    if config.audits:
        audit.set_audits(True)
    try:
        for run in range(config.runs):
            seed = config.seed + run
            family = config.family or family_for_run(run)
            net = random_network(seed, family=family)
            say(f"run {run}: family={family} seed={seed} "
                f"({len(net.inputs)} in / {len(net.nodes)} nodes / "
                f"LC {net.literal_count()})")
            lc_by_core: Dict[Tuple[str, str], int] = {}
            for path in paths:
                for core in cores:
                    # Trace context: a traced campaign tags every span
                    # with (run, seed, family, path, core) so a failing
                    # check ships with its exact trace slice.
                    with _obs.context(
                        track=f"fuzz:{run}", run=run, seed=seed,
                        family=family, path=path.name, core=core,
                    ), _obs.span("fuzz-check", cat="verify"):
                        outcome, final = check_path(
                            net, path, core, vectors=config.vectors
                        )
                    report.checks += 1
                    if final is not None:
                        lc_by_core[(path.name, core)] = final
                        report.lc_by_path[path.name] = final
                    if outcome is None:
                        continue
                    kind, detail = outcome
                    failure = FuzzFailure(
                        run=run, seed=seed, family=family,
                        path=path.name, core=core,
                        kind=kind, detail=detail, eqn=write_eqn(net),
                    )
                    _finalize_failure(failure, net, path, core, config)
                    report.failures.append(failure)
                    say("  " + failure.describe())
            # Cross-core determinism: a deterministic path must land on
            # the same literal count under every core.
            for path in paths:
                if not path.deterministic:
                    continue
                finals = {
                    core: lc_by_core[(path.name, core)]
                    for core in cores
                    if (path.name, core) in lc_by_core
                }
                if len(set(finals.values())) > 1:
                    failure = FuzzFailure(
                        run=run, seed=seed, family=family,
                        path=path.name, core=None,
                        kind="core-mismatch",
                        detail=f"final literal counts diverge: {finals}",
                        eqn=write_eqn(net),
                    )
                    report.failures.append(failure)
                    say("  " + failure.describe())
            report.runs += 1
    finally:
        audit.set_audits(prev_audits)
    return report


def _finalize_failure(
    failure: FuzzFailure,
    net: BooleanNetwork,
    path: FactorPath,
    core: Optional[str],
    config: FuzzConfig,
) -> None:
    """Optionally shrink the failing network and persist a repro entry."""
    if not config.shrink:
        return
    try:
        small = _shrink_failure(net, path, core, failure.kind, config.vectors)
    except Exception:  # noqa: BLE001 - shrinking must never mask the find
        return
    failure.eqn = write_eqn(small)
    failure.shrunk = True
    if config.repro_dir:
        from repro.verify.corpus import save_repro

        failure.repro_file = save_repro(config.repro_dir, failure)
