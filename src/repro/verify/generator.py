"""Seeded random-network generation for the differential fuzzer.

Unlike :mod:`repro.circuits.generators` (which plants *recoverable*
structure so benchmark speedups are meaningful), the fuzz generator aims
at **shape coverage**: each family stresses a different corner of the
KC-matrix machinery.  Networks are deliberately small — every one stays
within the exhaustive-equivalence oracle's input limit, so the fuzzer
checks exact functional equality, not a Monte-Carlo approximation.

Families
--------

``dense``
    Few inputs, fat SOPs: many cubes per node, high cell density in the
    KC matrix (stresses rectangle enumeration and the bitview masks).
``sparse``
    More inputs, skinny SOPs: mostly 1–2-cube nodes, many kernel-free
    nodes (stresses the empty-matrix and no-gain paths).
``dupcube``
    Nodes drawing cubes from a small shared pool, so identical cubes
    recur within and across nodes and single original cubes are reachable
    through several (row, column) cells (stresses the distinct-cube gain
    correction and ``dup_rows``).
``shared``
    Products of planted kernels shared across nodes (stresses rectangles
    spanning nodes — the partition-loss cases of Sections 4/5).
``degenerate``
    Single-cube nodes, alias nodes (one single-literal cube), constant-0
    nodes, duplicated expressions (stresses sweep/collapse edge cases
    and kernel enumeration on kernel-free functions).

All sampling is driven by one :class:`random.Random` seeded from
``(family, seed)``; the same pair always yields the same network.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.network.boolean_network import BooleanNetwork

FAMILIES = ("dense", "sparse", "dupcube", "shared", "degenerate")

#: Hard cap that keeps every generated network exhaustively checkable.
MAX_INPUTS = 8


def family_for_run(run_index: int) -> str:
    """The default family rotation used by ``repro fuzz``."""
    return FAMILIES[run_index % len(FAMILIES)]


def _sample_cube(
    rng: random.Random,
    pool: Sequence[str],
    lo: int,
    hi: int,
) -> Tuple[str, ...]:
    """A cube as a tuple of literal names, never both polarities at once."""
    k = max(1, min(rng.randint(lo, hi), len(pool)))
    picked: List[str] = []
    bases: Set[str] = set()
    for name in rng.sample(list(pool), len(pool)):
        base = name.rstrip("'")
        if base in bases:
            continue
        picked.append(name)
        bases.add(base)
        if len(picked) == k:
            break
    return tuple(sorted(picked))


def _literal_pool(
    inputs: Sequence[str],
    node_names: Sequence[str],
    rng: random.Random,
    complements: bool,
    node_literals: bool,
) -> List[str]:
    pool = list(inputs)
    if complements:
        pool += [n + "'" for n in inputs]
    if node_literals and node_names:
        take = rng.randint(0, min(3, len(node_names)))
        for n in rng.sample(list(node_names), take):
            pool.append(n)
            if complements and rng.random() < 0.5:
                pool.append(n + "'")
    return pool


def _add_node(net: BooleanNetwork, name: str, cubes: List[Tuple[str, ...]]) -> None:
    """Intern name-level cubes against the network's literal table."""
    ids = [[net.table.id_of(nm) for nm in cube] for cube in cubes]
    net.add_node(name, ids)
    net.add_output(name)


def random_network(
    seed: int,
    family: Optional[str] = None,
    name: Optional[str] = None,
) -> BooleanNetwork:
    """Generate one fuzz network (deterministic in ``(family, seed)``)."""
    if family is None:
        family = family_for_run(seed)
    if family not in FAMILIES:
        raise ValueError(f"unknown fuzz family {family!r}; expected one of {FAMILIES}")
    rng = random.Random(f"repro-fuzz:{family}:{seed}")
    net = BooleanNetwork(name or f"fuzz_{family}_{seed}")

    build = {
        "dense": _build_dense,
        "sparse": _build_sparse,
        "dupcube": _build_dupcube,
        "shared": _build_shared,
        "degenerate": _build_degenerate,
    }[family]
    build(net, rng)
    net.validate()
    assert len(net.inputs) <= MAX_INPUTS
    return net


# ----------------------------------------------------------------------
# Family builders
# ----------------------------------------------------------------------

def _build_dense(net: BooleanNetwork, rng: random.Random) -> None:
    inputs = [f"x{i}" for i in range(rng.randint(3, 5))]
    net.add_inputs(inputs)
    nodes: List[str] = []
    for i in range(rng.randint(3, 5)):
        pool = _literal_pool(inputs, nodes, rng, complements=True,
                             node_literals=rng.random() < 0.5)
        cubes = [
            _sample_cube(rng, pool, 2, 4)
            for _ in range(rng.randint(4, 8))
        ]
        node = f"d{i}"
        _add_node(net, node, cubes)
        nodes.append(node)


def _build_sparse(net: BooleanNetwork, rng: random.Random) -> None:
    inputs = [f"x{i}" for i in range(rng.randint(5, MAX_INPUTS))]
    net.add_inputs(inputs)
    nodes: List[str] = []
    for i in range(rng.randint(4, 8)):
        pool = _literal_pool(inputs, nodes, rng, complements=rng.random() < 0.7,
                             node_literals=rng.random() < 0.4)
        cubes = [
            _sample_cube(rng, pool, 1, 3)
            for _ in range(rng.randint(1, 3))
        ]
        node = f"s{i}"
        _add_node(net, node, cubes)
        nodes.append(node)


def _build_dupcube(net: BooleanNetwork, rng: random.Random) -> None:
    inputs = [f"x{i}" for i in range(rng.randint(3, 6))]
    net.add_inputs(inputs)
    pool = _literal_pool(inputs, [], rng, complements=True, node_literals=False)
    # A small shared cube pool: the same original cube shows up in many
    # nodes and behind many (cokernel, kernel-cube) splits.
    shared_cubes = [_sample_cube(rng, pool, 2, 3) for _ in range(rng.randint(3, 5))]
    for i in range(rng.randint(3, 6)):
        cubes = []
        for _ in range(rng.randint(3, 6)):
            if rng.random() < 0.7:
                cubes.append(shared_cubes[rng.randrange(len(shared_cubes))])
            else:
                cubes.append(_sample_cube(rng, pool, 1, 3))
        _add_node(net, f"u{i}", cubes)


def _build_shared(net: BooleanNetwork, rng: random.Random) -> None:
    inputs = [f"x{i}" for i in range(rng.randint(4, 6))]
    net.add_inputs(inputs)
    pool = _literal_pool(inputs, [], rng, complements=True, node_literals=False)
    # Planted kernels: small cube-free sums shared by several nodes.
    kernels = []
    for _ in range(rng.randint(1, 3)):
        k = {_sample_cube(rng, pool, 1, 2) for _ in range(rng.randint(2, 3))}
        kernels.append(sorted(k))
    for i in range(rng.randint(3, 5)):
        cubes: List[Tuple[str, ...]] = []
        for _ in range(rng.randint(1, 3)):
            kern = kernels[rng.randrange(len(kernels))]
            support = {nm.rstrip("'") for c in kern for nm in c}
            co_pool = [nm for nm in pool if nm.rstrip("'") not in support]
            co = _sample_cube(rng, co_pool, 1, 2) if co_pool else ()
            for kc in kern:
                cubes.append(tuple(sorted(set(co) | set(kc))))
        for _ in range(rng.randint(0, 2)):
            cubes.append(_sample_cube(rng, pool, 2, 4))
        _add_node(net, f"h{i}", cubes)


def _build_degenerate(net: BooleanNetwork, rng: random.Random) -> None:
    inputs = [f"x{i}" for i in range(rng.randint(2, 5))]
    net.add_inputs(inputs)
    pool = _literal_pool(inputs, [], rng, complements=True, node_literals=False)
    nodes: List[str] = []
    exprs: Dict[str, List[Tuple[str, ...]]] = {}
    for i in range(rng.randint(3, 7)):
        node = f"g{i}"
        shape = rng.randrange(6)
        if shape == 0:          # single cube (kernel-free)
            cubes = [_sample_cube(rng, pool, 1, 4)]
        elif shape == 1:        # alias: one single-literal cube
            target = rng.choice(nodes) if nodes and rng.random() < 0.5 else None
            cubes = [(target,)] if target else [_sample_cube(rng, pool, 1, 1)]
        elif shape == 2:        # constant 0
            cubes = []
        elif shape == 3 and nodes:  # duplicate an earlier expression
            cubes = list(exprs[rng.choice(nodes)])
        elif shape == 4 and nodes:  # read an earlier node, maybe negated
            prev = rng.choice(nodes)
            lit = prev + ("'" if rng.random() < 0.5 else "")
            cubes = [
                tuple(sorted(set(_sample_cube(rng, pool, 0, 2)) | {lit})),
                _sample_cube(rng, pool, 1, 2),
            ]
        else:                   # ordinary small node
            cubes = [_sample_cube(rng, pool, 1, 3)
                     for _ in range(rng.randint(2, 3))]
        _add_node(net, node, cubes)
        exprs[node] = cubes
        nodes.append(node)
