"""Registry of the factorization paths the fuzzer drives differentially.

Every entry takes a :class:`BooleanNetwork` and returns a *new* network
(the input is never mutated).  The rectangle core ("bit" vs "set") is
orthogonal: sequential paths thread an explicit ``core=`` argument, the
parallel algorithms resolve :func:`repro.rectangles.bitview.default_core`
internally, so :func:`rect_core` pins the process default for the
duration of one run — both mechanisms see the same choice.

Paths marked ``deterministic`` promise a reproducible result network for
a fixed input *regardless of core*: the bit core is byte-identical to
the sparse core by construction, so differing final literal counts
between cores is itself a failure the fuzzer reports.  The threaded
L-shaped path races real threads and only promises functional
equivalence.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.network.boolean_network import BooleanNetwork
from repro.rectangles.bitview import CORES, ENV_VAR, resolve_core


@contextlib.contextmanager
def rect_core(core: Optional[str]):
    """Pin the process-wide rectangle-core default (``REPRO_RECT_CORE``)."""
    core = resolve_core(core)
    prev = os.environ.get(ENV_VAR)
    os.environ[ENV_VAR] = core
    try:
        yield core
    finally:
        if prev is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = prev


@dataclass(frozen=True)
class FactorPath:
    """One named way of factoring a network end to end.

    Paths with ``nprocs > 0`` run on the simulated machine and accept a
    fault plan/injector (:mod:`repro.faults`); the fuzzer's ``--faults``
    mode re-executes exactly those under random crash+drop schedules.
    """

    name: str
    deterministic: bool
    _run: Callable[..., BooleanNetwork]
    nprocs: int = 0  # simulated processors; 0 = sequential path

    @property
    def supports_faults(self) -> bool:
        return self.nprocs > 0

    def run(
        self,
        network: BooleanNetwork,
        core: Optional[str] = None,
        faults=None,
    ) -> BooleanNetwork:
        """Factor a copy of *network* under *core*; return the result."""
        with rect_core(core) as resolved:
            if faults is None:
                return self._run(network, resolved)
            if not self.supports_faults:
                raise ValueError(
                    f"path {self.name!r} does not run on the simulated "
                    f"machine and cannot take a fault plan"
                )
            return self._run(network, resolved, faults)


def _seq(searcher: str):
    def run(network: BooleanNetwork, core: str) -> BooleanNetwork:
        from repro.rectangles.cover import kernel_extract

        work = network.copy()
        kernel_extract(work, searcher=searcher, core=core)
        return work

    return run


def _replicated(network: BooleanNetwork, core: str, faults=None) -> BooleanNetwork:
    from repro.parallel.replicated import replicated_kernel_extract

    return replicated_kernel_extract(network, nprocs=3, faults=faults).network


def _independent(network: BooleanNetwork, core: str, faults=None) -> BooleanNetwork:
    from repro.parallel.independent import independent_kernel_extract

    return independent_kernel_extract(network, nprocs=2, faults=faults).network


def _lshaped(network: BooleanNetwork, core: str, faults=None) -> BooleanNetwork:
    from repro.parallel.lshaped import lshaped_kernel_extract

    return lshaped_kernel_extract(network, nprocs=2, faults=faults).network


def _lshaped_threaded(network: BooleanNetwork, core: str) -> BooleanNetwork:
    from repro.parallel.lshaped_threaded import lshaped_kernel_extract_threaded

    return lshaped_kernel_extract_threaded(network, nprocs=2)


_PATHS: List[FactorPath] = [
    FactorPath("seq-exhaustive", True, _seq("exhaustive")),
    FactorPath("seq-pingpong", True, _seq("pingpong")),
    FactorPath("replicated", True, _replicated, nprocs=3),
    FactorPath("independent", True, _independent, nprocs=2),
    FactorPath("lshaped", True, _lshaped, nprocs=2),
    FactorPath("lshaped-threaded", False, _lshaped_threaded),
]

_BY_NAME: Dict[str, FactorPath] = {p.name: p for p in _PATHS}


def all_paths() -> List[FactorPath]:
    """Every registered path, in registry order."""
    return list(_PATHS)


def get_path(name: str) -> FactorPath:
    """Look up one path by name (``ValueError`` with the valid list)."""
    got = _BY_NAME.get(name)
    if got is None:
        valid = ", ".join(sorted(_BY_NAME))
        raise ValueError(f"unknown factorization path {name!r}; expected one of: {valid}")
    return got


def all_cores() -> List[str]:
    """The rectangle cores the fuzzer crosses every path with."""
    return list(CORES)
