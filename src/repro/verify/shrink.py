"""Greedy failure minimization (delta debugging for Boolean networks).

Given a network on which some predicate holds (``still_fails``), the
shrinker repeatedly tries structure-removing edits and keeps every edit
that preserves the predicate, coarse to fine:

1. **drop nodes** — a node is removed together with its transitive
   fanout cone (readers of a deleted signal cannot stay), largest-first;
2. **drop cubes** — one SOP cube at a time;
3. **drop literals** — one literal of one cube at a time (cubes are kept
   non-empty so shrinking never introduces the universal cube);
4. **drop inputs** — primary inputs no node reads.

Every candidate is rebuilt from scratch against a fresh literal table
and validated before the predicate sees it, so the shrinker can never
hand out a structurally broken network.  The loop re-runs the pass
sequence until a full sweep makes no progress; since every accepted edit
strictly shrinks the (nodes, cubes, literals, inputs) vector, the result
is 1-minimal: no single remaining edit of these kinds preserves the
failure.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.network.boolean_network import BooleanNetwork, base_signal

Predicate = Callable[[BooleanNetwork], bool]

#: Name-level image of a network: cubes as tuples of literal names.
_Nodes = Dict[str, List[Tuple[str, ...]]]


def _snapshot(net: BooleanNetwork) -> Tuple[List[str], List[str], _Nodes]:
    inputs = list(net.inputs)
    outputs = list(net.outputs)
    nodes: _Nodes = {}
    for name in net.topological_order():
        nodes[name] = [
            tuple(net.table.name_of(l) for l in cube) for cube in net.nodes[name]
        ]
    return inputs, outputs, nodes


def _rebuild(
    inputs: Sequence[str], outputs: Sequence[str], nodes: _Nodes, name: str
) -> Optional[BooleanNetwork]:
    """Reassemble a candidate; ``None`` when it is not a valid network."""
    defined = set(inputs) | set(nodes)
    keep_outputs = [o for o in outputs if o in defined]
    if not keep_outputs or not nodes:
        return None
    net = BooleanNetwork(name)
    net.add_inputs(inputs)
    try:
        for node, cubes in nodes.items():
            net.add_node(node, [[net.table.id_of(nm) for nm in c] for c in cubes])
        for o in keep_outputs:
            net.add_output(o)
        net.validate()
    except (KeyError, ValueError):
        return None
    return net


def _fanout_cone(nodes: _Nodes, root: str) -> List[str]:
    """*root* plus every node transitively reading it."""
    readers: Dict[str, List[str]] = {n: [] for n in nodes}
    for n, cubes in nodes.items():
        for cube in cubes:
            for nm in cube:
                base = base_signal(nm)
                if base in readers and base != n:
                    readers[base].append(n)
    cone = set()
    stack = [root]
    while stack:
        n = stack.pop()
        if n in cone:
            continue
        cone.add(n)
        stack.extend(readers[n])
    return sorted(cone)


def shrink_network(
    network: BooleanNetwork,
    still_fails: Predicate,
    max_steps: int = 10_000,
) -> BooleanNetwork:
    """Minimize *network* while ``still_fails`` keeps holding.

    The input network is never mutated.  If the predicate does not hold
    on the input itself, the input is returned unchanged.
    """
    inputs, outputs, nodes = _snapshot(network)
    name = network.name + "_min"
    current = _rebuild(inputs, outputs, nodes, name)
    if current is None or not still_fails(current):
        return network

    def attempt(
        new_inputs: Sequence[str], new_nodes: _Nodes
    ) -> Optional[BooleanNetwork]:
        candidate = _rebuild(new_inputs, outputs, new_nodes, name)
        if candidate is not None and still_fails(candidate):
            return candidate
        return None

    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False

        # Pass 1: drop whole fanout cones, biggest savings first.
        for node in sorted(nodes, key=lambda n: -len(_fanout_cone(nodes, n))):
            if node not in nodes:
                continue
            cone = _fanout_cone(nodes, node)
            if len(cone) == len(nodes):
                continue
            trial = {n: cubes for n, cubes in nodes.items() if n not in cone}
            steps += 1
            if attempt(inputs, trial) is not None:
                nodes = trial
                progress = True

        # Pass 2: drop single cubes.
        for node in list(nodes):
            i = 0
            while i < len(nodes[node]):
                trial = dict(nodes)
                trial[node] = nodes[node][:i] + nodes[node][i + 1:]
                steps += 1
                if attempt(inputs, trial) is not None:
                    nodes = trial
                    progress = True
                else:
                    i += 1

        # Pass 3: drop single literals (never emptying a cube).
        for node in list(nodes):
            i = 0
            while i < len(nodes[node]):
                cube = nodes[node][i]
                shrunk_here = False
                for j in range(len(cube)):
                    if len(cube) <= 1:
                        break
                    trial = dict(nodes)
                    trial[node] = (
                        nodes[node][:i]
                        + [cube[:j] + cube[j + 1:]]
                        + nodes[node][i + 1:]
                    )
                    steps += 1
                    if attempt(inputs, trial) is not None:
                        nodes = trial
                        cube = nodes[node][i]
                        progress = True
                        shrunk_here = True
                        break
                if not shrunk_here:
                    i += 1

        # Pass 4: drop unread primary inputs.
        read = set()
        for cubes in nodes.values():
            for cube in cubes:
                for nm in cube:
                    read.add(base_signal(nm))
        for pi in list(inputs):
            if pi in read or pi in outputs or len(inputs) <= 1:
                continue
            trial_inputs = [x for x in inputs if x != pi]
            steps += 1
            if attempt(trial_inputs, nodes) is not None:
                inputs = trial_inputs
                progress = True

    final = _rebuild(inputs, outputs, nodes, name)
    return final if final is not None else network
