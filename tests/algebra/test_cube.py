from repro.algebra.cube import (
    common_cube,
    cube,
    cube_contains,
    cube_divide,
    cube_literal_count,
    cube_union,
)


class TestCubeConstruction:
    def test_sorted_and_deduped(self):
        assert cube([3, 1, 3, 2]) == (1, 2, 3)

    def test_empty_is_universal_cube(self):
        assert cube([]) == ()


class TestContainment:
    def test_subset(self):
        assert cube_contains((1, 2, 3), (1, 3))

    def test_equal(self):
        assert cube_contains((1, 2), (1, 2))

    def test_universal_in_everything(self):
        assert cube_contains((5,), ())
        assert cube_contains((), ())

    def test_not_contained(self):
        assert not cube_contains((1, 2), (3,))

    def test_longer_never_contained(self):
        assert not cube_contains((1,), (1, 2))

    def test_interleaved(self):
        assert cube_contains((0, 2, 4, 6, 8), (2, 8))
        assert not cube_contains((0, 2, 4, 6, 8), (2, 7))


class TestDivision:
    def test_even_division(self):
        assert cube_divide((1, 2, 3), (2,)) == (1, 3)

    def test_divide_by_universal(self):
        assert cube_divide((1, 2), ()) == (1, 2)

    def test_divide_self(self):
        assert cube_divide((1, 2), (1, 2)) == ()

    def test_no_division(self):
        assert cube_divide((1, 2), (3,)) is None

    def test_division_then_union_roundtrip(self):
        c, d = (1, 2, 5, 9), (2, 9)
        q = cube_divide(c, d)
        assert cube_union(q, d) == c


class TestUnion:
    def test_disjoint(self):
        assert cube_union((1, 3), (2, 4)) == (1, 2, 3, 4)

    def test_overlapping(self):
        assert cube_union((1, 2), (2, 3)) == (1, 2, 3)

    def test_identity_with_universal(self):
        assert cube_union((), (1,)) == (1,)
        assert cube_union((1,), ()) == (1,)

    def test_commutative(self):
        assert cube_union((1, 5), (2,)) == cube_union((2,), (1, 5))


class TestCommonCube:
    def test_intersection(self):
        assert common_cube([(1, 2, 3), (2, 3, 4), (0, 2, 3)]) == (2, 3)

    def test_disjoint_gives_universal(self):
        assert common_cube([(1,), (2,)]) == ()

    def test_empty_sequence(self):
        assert common_cube([]) == ()

    def test_single_cube(self):
        assert common_cube([(4, 7)]) == (4, 7)


def test_literal_count():
    assert cube_literal_count(()) == 0
    assert cube_literal_count((1, 2, 3)) == 3
