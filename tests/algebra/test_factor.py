import pytest
from hypothesis import given, settings, strategies as st

from repro.algebra.factor import (
    Leaf,
    Product,
    Sum,
    factored_literal_count,
    network_factored_literal_count,
    quick_factor,
)
from repro.algebra.literals import LiteralTable
from repro.algebra.sop import parse_sop, sop, sop_literal_count


@pytest.fixture
def t():
    return LiteralTable()


def names(t):
    return [t.name_of(i) for i in range(len(t))]


def evaluate_tree(tree, assignment):
    from repro.algebra.factor import One

    if isinstance(tree, One):
        return True
    if isinstance(tree, Leaf):
        return assignment[tree.literal]
    if isinstance(tree, Product):
        return all(evaluate_tree(f, assignment) for f in tree.factors)
    return any(evaluate_tree(x, assignment) for x in tree.terms)


def evaluate_sop(f, assignment):
    return any(all(assignment[l] for l in c) for c in f)


def trees_equal_sop(f, nlits):
    tree = quick_factor(f)
    for bits in range(1 << nlits):
        assignment = {i: bool(bits >> i & 1) for i in range(nlits)}
        if evaluate_tree(tree, assignment) != evaluate_sop(f, assignment):
            return False
    return True


class TestQuickFactor:
    def test_single_cube(self, t):
        f = parse_sop("abc", t)
        tree = quick_factor(f)
        assert tree.literal_count() == 3

    def test_single_literal(self, t):
        f = parse_sop("a", t)
        assert quick_factor(f).literal_count() == 1

    def test_common_cube_pulled_out(self, t):
        f = parse_sop("ab + ac", t)
        tree = quick_factor(f)
        assert tree.literal_count() == 3  # a(b + c)
        assert "(" in tree.render(names(t))

    def test_paper_f_improves(self, t):
        f = parse_sop("af + bf + ag + cg + ade + bde + cde", t)
        assert factored_literal_count(f) < sop_literal_count(f)

    def test_never_worse_than_flat(self, t):
        for text in ("ab + cd", "a + b + c", "abc + abd + ae + cd + cef"):
            table = LiteralTable()
            f = parse_sop(text, table)
            assert factored_literal_count(f) <= sop_literal_count(f)

    def test_function_preserved_examples(self, t):
        f = parse_sop("ab + ac + bc + d", t)
        assert trees_equal_sop(f, len(t))

    def test_constant_zero_raises(self):
        with pytest.raises(ValueError):
            quick_factor(())

    def test_constant_lc_zero(self):
        assert factored_literal_count(()) == 0
        assert factored_literal_count(((),)) == 0

    def test_render_roundtrip_parse(self, t):
        f = parse_sop("af + bf + ag + cg", t)
        rendered = quick_factor(f).render(names(t))
        assert "+" in rendered


lits = st.integers(min_value=0, max_value=5)
nonempty_cubes = st.frozensets(lits, min_size=1, max_size=3).map(
    lambda s: tuple(sorted(s))
)
nonzero_sops = st.frozensets(nonempty_cubes, min_size=1, max_size=6).map(
    lambda s: tuple(sorted(s))
)


class TestQuickFactorProperties:
    @settings(max_examples=60, deadline=None)
    @given(nonzero_sops)
    def test_factored_function_equals_sop(self, f):
        assert trees_equal_sop(f, 6)

    @settings(max_examples=60, deadline=None)
    @given(nonzero_sops)
    def test_factored_never_more_literals(self, f):
        assert factored_literal_count(f) <= sop_literal_count(f)


def test_network_factored_count(eq1_network):
    flat = eq1_network.literal_count()
    fact = network_factored_literal_count(eq1_network)
    assert 0 < fact <= flat
