import pytest

from repro.algebra.kernels import Kernel, kernel_level, kernels, level0_kernels
from repro.algebra.literals import LiteralTable
from repro.algebra.sop import (
    divide,
    is_cube_free,
    format_sop,
    parse_sop,
    sop_literal_count,
)
from repro.machine.costmodel import CostMeter


@pytest.fixture
def t():
    return LiteralTable()


def names(t):
    return [t.name_of(i) for i in range(len(t))]


def fmt(expr, t):
    return format_sop(expr, names(t))


class TestPaperKernels:
    """Kernels of G = af + bf + ace + bce from the paper's Section 2:
    (ce + f)(a, b) and (a + b)(f, ce), plus the trivial self-kernel."""

    def test_g_kernels(self, t):
        g = parse_sop("af + bf + ace + bce", t)
        ks = kernels(g)
        got = {(fmt(k.expression, t), fmt((k.cokernel,), t)) for k in ks}
        assert ("a + b", "f") in got
        assert ("a + b", "ce") in got
        assert any("f" in e and "ce" in e for e, _ in got)  # ce + f kernels
        # self kernel with co-kernel 1
        assert any(c == "1" for _, c in got)

    def test_f_has_abc_kernel(self, t):
        f = parse_sop("af + bf + ag + cg + ade + bde + cde", t)
        got = {(fmt(k.expression, t), fmt((k.cokernel,), t)) for k in kernels(f)}
        assert ("a + b + c", "de") in got


class TestKernelProperties:
    def test_no_kernels_for_single_cube(self, t):
        assert kernels(parse_sop("abc", t)) == []

    def test_no_kernels_for_constant(self, t):
        assert kernels(()) == []

    def test_every_kernel_is_cube_free(self, t):
        f = parse_sop("abc + abd + ae + cd + cef", t)
        for k in kernels(f):
            assert is_cube_free(k.expression), fmt(k.expression, t)

    def test_every_kernel_divides_f(self, t):
        f = parse_sop("abc + abd + ae + cd + cef", t)
        for k in kernels(f):
            q, _ = divide(f, k.expression)
            assert q, f"kernel {fmt(k.expression, t)} does not divide"

    def test_kernel_is_quotient_of_cokernel(self, t):
        f = parse_sop("abc + abd + ae + cd + cef", t)
        for k in kernels(f):
            quotient = []
            for c in f:
                from repro.algebra.cube import cube_divide

                q = cube_divide(c, k.cokernel)
                if q is not None:
                    quotient.append(q)
            # kernel cubes ⊆ f / cokernel
            assert set(k.expression) <= set(quotient)

    def test_distinct_cokernels(self, t):
        f = parse_sop("af + bf + ag + cg + ade + bde + cde", t)
        ks = kernels(f)
        assert len({(k.expression, k.cokernel) for k in ks}) == len(ks)

    def test_cokernel_disjoint_from_kernel_cubes(self, t):
        f = parse_sop("abc + abd + acd + bcd", t)
        for k in kernels(f):
            for c in k.expression:
                assert not (set(c) & set(k.cokernel))

    def test_kernel_requires_two_cubes(self):
        with pytest.raises(ValueError):
            Kernel(expression=((1,),), cokernel=())

    def test_deterministic_order(self, t):
        f = parse_sop("abc + abd + ae + cd + cef", t)
        assert kernels(f) == kernels(f)


class TestKernelMeter:
    def test_meter_charged(self, t):
        f = parse_sop("af + bf + ag + cg", t)
        meter = CostMeter()
        kernels(f, meter=meter)
        assert meter.counts.get("kernel_cube_visit", 0) > 0


class TestKernelLevels:
    def test_level0_simple(self, t):
        assert kernel_level(parse_sop("a + b", t)) == 0

    def test_level1(self, t):
        # (a+b)c + d has kernel a+b at a lower level
        f = parse_sop("ac + bc + d", t)
        assert kernel_level(f) >= 1

    def test_level0_kernels_subset(self, t):
        f = parse_sop("af + bf + ag + cg + ade + bde + cde", t)
        l0 = level0_kernels(f)
        allk = kernels(f)
        assert set((k.expression, k.cokernel) for k in l0) <= set(
            (k.expression, k.cokernel) for k in allk
        )
        assert l0  # a+b etc. are level 0

    def test_level0_kernels_have_no_proper_kernels(self, t):
        f = parse_sop("af + bf + ag + cg + ade + bde + cde", t)
        for k in level0_kernels(f):
            assert kernel_level(k.expression) == 0
