import pytest

from repro.algebra.literals import LiteralTable


class TestIdAssignment:
    def test_first_seen_order(self):
        t = LiteralTable()
        assert t.id_of("a") == 0
        assert t.id_of("b") == 1
        assert t.id_of("a") == 0

    def test_constructor_interns(self):
        t = LiteralTable(["x", "y"])
        assert t.get("x") == 0
        assert t.get("y") == 1

    def test_name_roundtrip(self):
        t = LiteralTable()
        for name in ("a", "b'", "x12", "[k0]"):
            assert t.name_of(t.id_of(name)) == name

    def test_complement_is_distinct_literal(self):
        t = LiteralTable()
        assert t.id_of("a") != t.id_of("a'")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            LiteralTable().id_of("")

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            LiteralTable().get("nope")


class TestBulkOps:
    def test_ids_sorted_and_deduped(self):
        t = LiteralTable()
        t.id_of("z")  # id 0
        ids = t.ids(["b", "a", "b"])
        assert ids == tuple(sorted(ids))
        assert len(ids) == 2

    def test_names_preserve_order(self):
        t = LiteralTable(["a", "b", "c"])
        assert t.names([2, 0]) == ("c", "a")

    def test_contains_and_len(self):
        t = LiteralTable(["a"])
        assert "a" in t
        assert "b" not in t
        assert len(t) == 1

    def test_iter_yields_pairs(self):
        t = LiteralTable(["a", "b"])
        assert list(t) == [(0, "a"), (1, "b")]


class TestCopy:
    def test_copy_is_independent(self):
        t = LiteralTable(["a"])
        dup = t.copy()
        dup.id_of("b")
        assert "b" in dup
        assert "b" not in t

    def test_copy_preserves_ids(self):
        t = LiteralTable(["a", "b"])
        dup = t.copy()
        assert dup.get("b") == t.get("b")
