"""Property-based tests for the algebra substrate (hypothesis).

These pin the algebraic identities everything above relies on:
division correctness, kernel invariants, cube-op algebra.
"""

from hypothesis import given, settings, strategies as st

from repro.algebra.cube import (
    common_cube,
    cube_contains,
    cube_divide,
    cube_union,
)
from repro.algebra.kernels import kernels
from repro.algebra.sop import (
    add,
    divide,
    is_cube_free,
    make_cube_free,
    multiply,
    sop,
    sop_literal_count,
    sop_support,
)

# Small literal universe keeps expressions overlapping enough to divide.
lits = st.integers(min_value=0, max_value=7)
cubes = st.frozensets(lits, min_size=0, max_size=4).map(lambda s: tuple(sorted(s)))
nonempty_cubes = st.frozensets(lits, min_size=1, max_size=4).map(
    lambda s: tuple(sorted(s))
)
sops = st.frozensets(nonempty_cubes, min_size=0, max_size=8).map(
    lambda s: tuple(sorted(s))
)
nonzero_sops = st.frozensets(nonempty_cubes, min_size=1, max_size=8).map(
    lambda s: tuple(sorted(s))
)


class TestCubeProperties:
    @given(cubes, cubes)
    def test_union_contains_both(self, a, b):
        u = cube_union(a, b)
        assert cube_contains(u, a) and cube_contains(u, b)

    @given(cubes, cubes)
    def test_union_is_min_container(self, a, b):
        u = cube_union(a, b)
        assert set(u) == set(a) | set(b)

    @given(cubes, cubes)
    def test_divide_iff_contains(self, a, b):
        q = cube_divide(a, b)
        assert (q is not None) == cube_contains(a, b)
        if q is not None:
            assert cube_union(q, b) == a

    @given(st.lists(cubes, min_size=1, max_size=6))
    def test_common_cube_divides_all(self, cs):
        cc = common_cube(cs)
        assert all(cube_contains(c, cc) for c in cs)


class TestDivisionProperties:
    @given(sops, nonzero_sops)
    def test_division_identity(self, f, d):
        q, r = divide(f, d)
        assert add(multiply(q, d), r) == f

    @given(sops, nonzero_sops)
    def test_remainder_not_further_divisible(self, f, d):
        q, r = divide(f, d)
        q2, _ = divide(r, d)
        # quotient of the remainder adds nothing: q was maximal
        if q2:
            # every quotient cube of the remainder misses some product cube
            prod = set(multiply(q2, d))
            assert not prod <= set(r) or q2 == ()

    @given(
        st.frozensets(
            st.frozensets(st.integers(0, 3), min_size=1, max_size=3).map(
                lambda s: tuple(sorted(s))
            ),
            min_size=1,
            max_size=6,
        ).map(lambda s: tuple(sorted(s))),
        st.frozensets(
            st.frozensets(st.integers(4, 7), min_size=1, max_size=3).map(
                lambda s: tuple(sorted(s))
            ),
            min_size=1,
            max_size=6,
        ).map(lambda s: tuple(sorted(s))),
    )
    def test_product_divides_evenly(self, f, d):
        # Supports are disjoint by construction — the precondition for
        # algebraic multiplication to be invertible by weak division.
        p = multiply(f, d)
        q, r = divide(p, d)
        assert set(f) <= set(q)
        assert r == ()

    @given(sops)
    def test_divide_by_one_is_identity(self, f):
        q, r = divide(f, ((),))
        assert q == f and r == ()


class TestCubeFreeProperties:
    @given(nonzero_sops)
    def test_make_cube_free_factorization(self, f):
        cf, c = make_cube_free(f)
        assert multiply(cf, (c,)) == f

    @given(nonzero_sops)
    def test_make_cube_free_result(self, f):
        cf, _ = make_cube_free(f)
        if len(cf) >= 2:
            assert is_cube_free(cf)


class TestKernelProperties:
    @settings(max_examples=60)
    @given(nonzero_sops)
    def test_kernels_are_cube_free_divisors(self, f):
        for k in kernels(f):
            assert len(k.expression) >= 2
            assert is_cube_free(k.expression)
            q, _ = divide(f, k.expression)
            assert q, "kernel must divide its expression"

    @settings(max_examples=60)
    @given(nonzero_sops)
    def test_cokernel_reproduces_kernel(self, f):
        for k in kernels(f):
            quotient = []
            for c in f:
                q = cube_divide(c, k.cokernel)
                if q is not None:
                    quotient.append(q)
            assert set(k.expression) <= set(quotient)

    @settings(max_examples=60)
    @given(nonzero_sops)
    def test_kernel_cube_times_cokernel_is_original_cube(self, f):
        fs = set(f)
        for k in kernels(f):
            for kc in k.expression:
                assert cube_union(kc, k.cokernel) in fs


class TestSopBasics:
    @given(sops, sops)
    def test_add_commutative(self, f, g):
        assert add(f, g) == add(g, f)

    @given(sops, sops)
    def test_multiply_commutative(self, f, g):
        assert multiply(f, g) == multiply(g, f)

    @given(sops)
    def test_literal_count_nonnegative(self, f):
        assert sop_literal_count(f) >= 0

    @given(sops)
    def test_support_covers_all_cubes(self, f):
        sup = sop_support(f)
        for c in f:
            assert set(c) <= sup
