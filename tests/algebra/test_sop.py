import pytest

from repro.algebra.literals import LiteralTable
from repro.algebra.sop import (
    add,
    divide,
    format_sop,
    is_cube_free,
    largest_common_cube,
    make_cube_free,
    multiply,
    parse_sop,
    sop,
    sop_literal_count,
    sop_support,
)


@pytest.fixture
def t():
    return LiteralTable()


class TestConstruction:
    def test_canonical_sorted_unique(self):
        f = sop([[2, 1], [1, 2], [3]])
        assert f == ((1, 2), (3,))

    def test_constant_zero(self):
        assert sop([]) == ()

    def test_constant_one(self):
        assert sop([[]]) == ((),)


class TestParseFormat:
    def test_parse_simple(self, t):
        f = parse_sop("ab + c", t)
        assert sop_literal_count(f) == 3

    def test_parse_complement_literal(self, t):
        f = parse_sop("a'b + c", t)
        names = [t.name_of(i) for i in range(len(t))]
        assert "a'" in names

    def test_parse_star_separated(self, t):
        f = parse_sop("x1 * x2 + y1", t)
        assert len(f) == 2
        assert sop_literal_count(f) == 3

    def test_parse_multichar_names(self, t):
        f = parse_sop("sig1 sig2 + sig3", t)
        assert sop_literal_count(f) == 3

    def test_parse_constants(self, t):
        assert parse_sop("0", t) == ()
        assert parse_sop("1", t) == ((),)

    def test_roundtrip(self, t):
        f = parse_sop("ab + ac + d", t)
        names = [t.name_of(i) for i in range(len(t))]
        g = parse_sop(format_sop(f, names), t)
        assert f == g

    def test_format_constant_zero(self):
        assert format_sop((), []) == "0"

    def test_parse_rejects_garbage(self, t):
        with pytest.raises(ValueError):
            parse_sop("a + + b", t)


class TestLiteralCountSupport:
    def test_paper_example_counts_33(self, t):
        f = parse_sop("af + bf + ag + cg + ade + bde + cde", t)
        g = parse_sop("af + bf + ace + bce", t)
        h = parse_sop("ade + cde", t)
        assert sum(map(sop_literal_count, (f, g, h))) == 33

    def test_support(self):
        assert sop_support(((1, 2), (2, 3))) == {1, 2, 3}


class TestCubeFree:
    def test_cube_free_expression(self, t):
        assert is_cube_free(parse_sop("a + b", t))

    def test_not_cube_free(self, t):
        assert not is_cube_free(parse_sop("ab + ac", t))

    def test_single_cube_not_cube_free(self, t):
        assert not is_cube_free(parse_sop("ab", t))

    def test_constant_one_is_cube_free(self):
        assert is_cube_free(((),))

    def test_constant_zero_not_cube_free(self):
        assert not is_cube_free(())

    def test_make_cube_free(self, t):
        f = parse_sop("ab + ac", t)
        cf, c = make_cube_free(f)
        assert is_cube_free(cf)
        assert len(c) == 1
        assert multiply(cf, (c,)) == f

    def test_largest_common_cube(self, t):
        f = parse_sop("abc + abd", t)
        assert len(largest_common_cube(f)) == 2


class TestDivision:
    def test_paper_division(self, t):
        f = parse_sop("af + bf + ag + cg + ade + bde + cde", t)
        d = parse_sop("a + b", t)
        q, r = divide(f, d)
        names = [t.name_of(i) for i in range(len(t))]
        assert set(format_sop(q, names).split(" + ")) == {"f", "de"}
        assert len(r) == 3

    def test_division_identity(self, t):
        f = parse_sop("af + bf + ag + cg + ade + bde + cde", t)
        d = parse_sop("a + b", t)
        q, r = divide(f, d)
        assert add(multiply(q, d), r) == f

    def test_no_common_quotient(self, t):
        f = parse_sop("ab + cd", t)
        q, r = divide(f, parse_sop("e + f", t))
        assert q == ()
        assert r == f

    def test_divide_by_one(self, t):
        f = parse_sop("ab + c", t)
        q, r = divide(f, ((),))
        assert q == f and r == ()

    def test_divide_by_zero_raises(self, t):
        with pytest.raises(ZeroDivisionError):
            divide(parse_sop("a", t), ())

    def test_divide_by_single_cube(self, t):
        f = parse_sop("abc + abd + ae", t)
        q, r = divide(f, parse_sop("ab", t))
        assert set(q) >= set(parse_sop("c + d", t))
        assert add(multiply(q, parse_sop("ab", t)), r) == f


class TestMultiplyAdd:
    def test_multiply_distributes(self, t):
        f = parse_sop("a + b", t)
        g = parse_sop("c + d", t)
        assert multiply(f, g) == parse_sop("ac + ad + bc + bd", t)

    def test_multiply_absorbs_duplicate_literals(self, t):
        f = parse_sop("a", t)
        assert multiply(f, f) == f

    def test_add_unions(self, t):
        assert add(parse_sop("a", t), parse_sop("b", t)) == parse_sop("a + b", t)

    def test_add_dedupes(self, t):
        f = parse_sop("a + b", t)
        assert add(f, f) == f
