import pytest

from repro.circuits.examples import (
    chain_network,
    example41_partition,
    example51_partition,
    paper_example_network,
    two_kernel_network,
)
from repro.circuits.generators import GeneratorSpec, generate_circuit
from repro.circuits.mcnc import (
    MCNC_SUITE,
    PARALLEL_TABLE_CIRCUITS,
    TABLE4_CIRCUITS,
    circuit_names,
    make_circuit,
)


class TestExamples:
    def test_eq1_exact(self):
        net = paper_example_network()
        assert net.literal_count() == 33
        assert set(net.nodes) == {"F", "G", "H"}
        assert net.inputs == list("abcdefg")
        net.validate()

    def test_partitions_cover_nodes(self):
        for parts in (example41_partition(), example51_partition()):
            assert sorted(n for p in parts for n in p) == ["F", "G", "H"]

    def test_two_kernel_network_valid(self):
        net = two_kernel_network()
        net.validate()
        assert net.literal_count() == 12

    def test_chain_network_depth(self):
        net = chain_network(5)
        assert len(net.nodes) == 5
        net.validate()


class TestGenerators:
    def test_deterministic(self):
        spec = GeneratorSpec(name="g", seed=42, n_inputs=10, target_lc=150)
        a, b = generate_circuit(spec), generate_circuit(spec)
        assert a.nodes == b.nodes

    def test_seed_changes_circuit(self):
        s1 = GeneratorSpec(name="g", seed=1, n_inputs=10, target_lc=150)
        s2 = GeneratorSpec(name="g", seed=2, n_inputs=10, target_lc=150)
        assert generate_circuit(s1).nodes != generate_circuit(s2).nodes

    def test_reaches_target_lc(self):
        spec = GeneratorSpec(name="g", seed=3, n_inputs=10, target_lc=500)
        net = generate_circuit(spec)
        assert 500 <= net.literal_count() <= 650

    def test_two_level_reads_only_pis(self):
        spec = GeneratorSpec(
            name="g", seed=4, n_inputs=10, target_lc=200, two_level=True
        )
        net = generate_circuit(spec)
        pis = set(net.inputs)
        for n in net.nodes:
            assert net.fanin_signals(n) <= pis

    def test_multi_level_has_internal_edges(self):
        spec = GeneratorSpec(
            name="g", seed=5, n_inputs=10, target_lc=600, two_level=False
        )
        net = generate_circuit(spec)
        internal = any(
            net.fanin_signals(n) & set(net.nodes) for n in net.nodes
        )
        assert internal

    def test_validates(self):
        spec = GeneratorSpec(name="g", seed=6, n_inputs=8, target_lc=300)
        generate_circuit(spec).validate()

    def test_all_nodes_are_outputs(self):
        spec = GeneratorSpec(name="g", seed=7, n_inputs=8, target_lc=100)
        net = generate_circuit(spec)
        assert set(net.outputs) == set(net.nodes)

    def test_factorable(self):
        """Planted kernels must be recoverable — the point of the design."""
        from repro.rectangles.cover import kernel_extract

        spec = GeneratorSpec(name="g", seed=8, n_inputs=10, target_lc=400)
        net = generate_circuit(spec)
        res = kernel_extract(net)
        assert res.quality_ratio < 0.9


class TestMcncSuite:
    def test_all_names_present(self):
        assert set(circuit_names()) == {
            "misex3", "dalu", "des", "seq", "spla", "ex1010",
        }
        assert set(PARALLEL_TABLE_CIRCUITS) <= set(MCNC_SUITE)
        assert set(TABLE4_CIRCUITS) <= set(MCNC_SUITE)

    @pytest.mark.parametrize("name", ["misex3", "dalu"])
    def test_full_scale_lc_close_to_paper(self, name):
        net = make_circuit(name)
        target = MCNC_SUITE[name].target_lc
        assert target <= net.literal_count() <= target * 1.05

    def test_scaling(self):
        small = make_circuit("dalu", scale=0.1)
        assert small.literal_count() < 500

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown circuit"):
            make_circuit("c17")

    def test_two_level_flags_match_mcnc_nature(self):
        # PLA-style benchmarks are two-level, dalu/des are multi-level.
        assert MCNC_SUITE["ex1010"].two_level
        assert MCNC_SUITE["spla"].two_level
        assert not MCNC_SUITE["dalu"].two_level
        assert not MCNC_SUITE["des"].two_level

    def test_deterministic_by_name(self):
        a = make_circuit("misex3", scale=0.2)
        b = make_circuit("misex3", scale=0.2)
        assert a.nodes == b.nodes


class TestLoadCircuitScale:
    """File-path circuits must reject scale != 1.0 loudly (the silent
    unscaled-load regression)."""

    def _eqn_file(self, tmp_path):
        p = tmp_path / "tiny.eqn"
        p.write_text("INORDER = a b;\nOUTORDER = f;\nf = a * b;\n")
        return p

    def test_file_path_at_unit_scale_loads(self, tmp_path):
        from repro.circuits import load_circuit

        net = load_circuit(str(self._eqn_file(tmp_path)), scale=1.0)
        assert net.literal_count() == 2

    @pytest.mark.parametrize("suffix", [".eqn", ".pla", ".blif"])
    def test_file_path_rejects_other_scales(self, tmp_path, suffix):
        from repro.circuits import load_circuit

        path = tmp_path / f"tiny{suffix}"
        path.write_text("placeholder — must error before parsing")
        with pytest.raises(ValueError, match="scale=0.5"):
            load_circuit(str(path), scale=0.5)
        try:
            load_circuit(str(path), scale=2.0)
        except ValueError as exc:
            assert str(path) in str(exc)
        else:  # pragma: no cover - regression guard
            raise AssertionError("scale=2.0 on a netlist path must raise")

    def test_named_circuits_still_scale(self):
        from repro.circuits import load_circuit

        assert (load_circuit("dalu", scale=0.1).literal_count()
                < load_circuit("dalu", scale=0.3).literal_count())

    def test_cli_factor_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        p = self._eqn_file(tmp_path)
        with pytest.raises(SystemExit) as exc:
            main(["factor", str(p), "--scale", "0.5"])
        assert exc.value.code == 2
        assert "scale=0.5" in capsys.readouterr().err
