import pytest

from repro.circuits.families import comparator, decoder, majority, parity, ripple_adder
from repro.network.simulate import evaluate


class TestParity:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_truth(self, n):
        net = parity(n)
        for minterm in range(1 << n):
            a = {f"x{i}": (minterm >> i) & 1 for i in range(n)}
            expected = bin(minterm).count("1") % 2
            assert evaluate(net, a)["parity"] == expected

    def test_minterm_count(self):
        assert len(parity(4).nodes["parity"]) == 8

    def test_bounds(self):
        with pytest.raises(ValueError):
            parity(0)

    def test_factoring_finds_xor_subterms(self):
        """In the algebraic model complements are independent variables,
        so (a⊕b) sub-sums ARE shared kernels between the two halves of a
        parity cover — extraction recovers them and stays correct."""
        from repro.network.simulate import exhaustive_equivalence_check
        from repro.rectangles.cover import kernel_extract

        net = parity(4)
        ref = net.copy()
        res = kernel_extract(net)
        assert res.final_lc < res.initial_lc
        assert exhaustive_equivalence_check(ref, net, outputs=["parity"])


class TestMajority:
    @pytest.mark.parametrize("n", [3, 5])
    def test_truth(self, n):
        net = majority(n)
        for minterm in range(1 << n):
            a = {f"x{i}": (minterm >> i) & 1 for i in range(n)}
            expected = int(bin(minterm).count("1") > n // 2)
            assert evaluate(net, a)["maj"] == expected

    def test_even_rejected(self):
        with pytest.raises(ValueError):
            majority(4)

    def test_factors_well(self):
        from repro.rectangles.cover import kernel_extract

        net = majority(7)
        res = kernel_extract(net)
        assert res.final_lc < 0.7 * res.initial_lc


class TestAdder:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_adds(self, n):
        net = ripple_adder(n)
        for a_val in range(1 << n):
            for b_val in range(1 << n):
                for cin in (0, 1):
                    assign = {"cin": cin}
                    for i in range(n):
                        assign[f"a{i}"] = (a_val >> i) & 1
                        assign[f"b{i}"] = (b_val >> i) & 1
                    vals = evaluate(net, assign)
                    got = sum(vals[f"s{i}"] << i for i in range(n))
                    got += vals[f"c{n}"] << n
                    assert got == a_val + b_val + cin

    def test_depth_grows_linearly(self):
        from repro.harness.stats import network_depth

        assert network_depth(ripple_adder(6)) > network_depth(ripple_adder(2))


class TestDecoder:
    def test_one_hot(self):
        net = decoder(3)
        for code in range(8):
            a = {f"x{i}": (code >> i) & 1 for i in range(3)}
            vals = evaluate(net, a)
            hot = [c for c in range(8) if vals[f"y{c}"]]
            assert hot == [code]

    def test_cube_extraction_shares_minterms(self):
        from repro.rectangles.cubeextract import cube_extract

        net = decoder(4)
        res = cube_extract(net)
        assert res.final_lc < res.initial_lc


class TestComparator:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_truth(self, n):
        net = comparator(n)
        for a_val in range(1 << n):
            for b_val in range(1 << n):
                assign = {}
                for i in range(n):
                    assign[f"a{i}"] = (a_val >> i) & 1
                    assign[f"b{i}"] = (b_val >> i) & 1
                assert evaluate(net, assign)["gt"] == int(a_val > b_val)

    def test_factoring_recovers_structure(self):
        from repro.rectangles.cover import kernel_extract
        from repro.network.simulate import exhaustive_equivalence_check

        net = comparator(3)
        ref = net.copy()
        res = kernel_extract(net)
        assert res.final_lc < res.initial_lc
        assert exhaustive_equivalence_check(ref, net, outputs=["gt"])
