"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.algebra.literals import LiteralTable
from repro.circuits.examples import paper_example_network, two_kernel_network
from repro.circuits.generators import GeneratorSpec, generate_circuit


@pytest.fixture
def table() -> LiteralTable:
    return LiteralTable()


@pytest.fixture
def eq1_network():
    """The paper's Equation 1 network (F, G, H; LC = 33)."""
    return paper_example_network()


@pytest.fixture
def shared_kernel_network():
    return two_kernel_network()


@pytest.fixture
def small_circuit():
    """A deterministic ~200-literal multi-level circuit for integration tests."""
    spec = GeneratorSpec(
        name="t-small", seed=7, n_inputs=12, target_lc=200, two_level=False,
        pool_size=6,
    )
    return generate_circuit(spec)


@pytest.fixture
def small_pla_circuit():
    """A deterministic ~300-literal two-level circuit."""
    spec = GeneratorSpec(
        name="t-pla", seed=11, n_inputs=10, target_lc=300, two_level=True,
        pool_size=8,
    )
    return generate_circuit(spec)
