"""The determinism contract and the fault-free byte-identity guarantee.

Two runs under the same ``(plan, seed)`` must produce byte-identical
event logs, result networks, and virtual clocks — on either rectangle
core.  And attaching ``FaultPlan.none()`` (or no plan at all) must be
*exactly* the fault-free path: same network bytes, same clocks.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.network.eqn import write_eqn
from repro.parallel.independent import independent_kernel_extract
from repro.parallel.lshaped import lshaped_kernel_extract
from repro.parallel.replicated import replicated_kernel_extract
from repro.verify.generator import random_network
from repro.verify.paths import rect_core

RUNNERS = {
    "lshaped": lambda net, faults: lshaped_kernel_extract(net, 3, faults=faults),
    "replicated": lambda net, faults: replicated_kernel_extract(net, 3, faults=faults),
    "independent": lambda net, faults: independent_kernel_extract(net, 3, faults=faults),
}

PLAN = "crash:1@4,drop:6*3,slow:2x3@2-9"


def _fingerprint(result):
    return (
        write_eqn(result.network),
        result.final_lc,
        result.parallel_time,
        tuple(result.proc_clocks),
    )


@pytest.mark.parametrize("algorithm", sorted(RUNNERS))
@pytest.mark.parametrize("core", ["bit", "set"])
def test_same_plan_seed_is_byte_identical(algorithm, core):
    net = random_network(11, family="shared")
    plan = FaultPlan.parse(PLAN)
    with rect_core(core):
        runs = []
        for _ in range(2):
            inj = FaultInjector(plan, seed=3)
            runs.append((_fingerprint(RUNNERS[algorithm](net, inj)),
                         inj.serialized_log()))
    assert runs[0] == runs[1]


@pytest.mark.parametrize("algorithm", sorted(RUNNERS))
def test_bit_and_set_cores_agree_under_faults(algorithm):
    # The cores promise identical search *results*, so the recovered
    # networks and the fault/recovery structure must match; virtual
    # clocks legitimately differ (the cores meter different op counts).
    net = random_network(12, family="dense")
    plan = FaultPlan.parse(PLAN)
    logs, nets = [], []
    for core in ("bit", "set"):
        with rect_core(core):
            inj = FaultInjector(plan, seed=0)
            nets.append(write_eqn(RUNNERS[algorithm](net, inj).network))
            logs.append([(r.phase, r.kind, r.pid, r.paired_with)
                         for r in inj.records])
    assert nets[0] == nets[1]
    assert logs[0] == logs[1]


@pytest.mark.parametrize("algorithm", sorted(RUNNERS))
def test_empty_plan_is_the_fault_free_path(algorithm):
    net = random_network(13, family="sparse")
    plain = _fingerprint(RUNNERS[algorithm](net, None))
    empty = _fingerprint(RUNNERS[algorithm](net, FaultPlan.none()))
    assert plain == empty


def test_different_seed_may_differ_but_stays_valid():
    # The schedule is plan-driven; the seed only feeds corruption noise,
    # so the log stays well-formed for any seed.
    net = random_network(14, family="dupcube")
    for seed in (0, 1):
        inj = FaultInjector(FaultPlan.parse("crash:0@2,drop:3"), seed=seed)
        lshaped_kernel_extract(net, 3, faults=inj)
        assert [r for r in inj.unrecovered() if r.kind != "slow"] == []
