"""FaultPlan: parsing, normalization, serialization, resolution."""

import pytest

from repro.faults import FaultEvent, FaultPlan, resolve_fault_injector
from repro.faults.plan import ENV_PLAN, ENV_SEED


def test_parse_render_roundtrip():
    spec = "crash:1@3,slow:2x4@5-12,drop:7*3,corrupt:4,dup:9,backend:0"
    plan = FaultPlan.parse(spec)
    assert FaultPlan.parse(plan.render()).events == plan.events


def test_parse_defaults():
    plan = FaultPlan.parse("crash:1,slow:0,drop:3")
    kinds = {ev.kind: ev for ev in plan.events}
    assert kinds["crash"].at == 4
    assert kinds["slow"].factor == 4.0
    assert kinds["slow"].until == kinds["slow"].at + 15
    assert kinds["drop"].attempts == 1


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        FaultPlan.parse("explode:1@2")
    with pytest.raises(ValueError):
        FaultPlan.parse("crash:notanumber")


def test_crash_normalized_to_op_one():
    plan = FaultPlan(events=(FaultEvent("crash", pid=0, at=0),))
    assert plan.events[0].at == 1


def test_events_sorted_canonically():
    plan = FaultPlan.parse("drop:9,crash:0@2,slow:1x2@2-4")
    assert [ev.at for ev in plan.events] == sorted(ev.at for ev in plan.events)


def test_to_from_dict_roundtrip():
    plan = FaultPlan.parse("crash:1@3,drop:5*2", max_retransmits=1)
    again = FaultPlan.from_dict(plan.to_dict())
    assert again == plan


def test_random_single_deterministic():
    a = FaultPlan.random_single(7, 4)
    b = FaultPlan.random_single(7, 4)
    assert a.render() == b.render()
    assert a.render() != FaultPlan.random_single(8, 4).render()
    crashes = [ev for ev in a.events if ev.kind == "crash"]
    assert len(crashes) == 1 and 0 <= crashes[0].pid < 4


def test_resolve_empty_plan_is_none():
    assert resolve_fault_injector(FaultPlan.none()) is None
    assert resolve_fault_injector(None) is None  # no env, no plan


def test_resolve_env_plan(monkeypatch):
    monkeypatch.setenv(ENV_PLAN, "crash:1@3")
    monkeypatch.setenv(ENV_SEED, "5")
    inj = resolve_fault_injector(None)
    assert inj is not None
    assert inj.plan.render() == "crash:1@3"
    assert inj.seed == 5


def test_resolve_passes_injector_through():
    from repro.faults import FaultInjector

    inj = FaultInjector(FaultPlan.parse("drop:1"), seed=2)
    assert resolve_fault_injector(inj) is inj
