"""Per-algorithm recovery: crashes, lost messages, and their pairing.

Every test drives a real parallel extraction under an injected plan and
asserts the three recovery guarantees: the run completes (no hang is
possible — the machine surfaces failures as values), the result is
functionally equivalent to the input, and every discrete injected fault
carries a paired ``recovery:*`` record.
"""

import pytest

from repro.circuits import load_circuit
from repro.faults import FaultInjector, FaultPlan
from repro.network.simulate import exhaustive_equivalence_check
from repro.parallel.independent import independent_kernel_extract
from repro.parallel.lshaped import lshaped_kernel_extract
from repro.parallel.replicated import replicated_kernel_extract
from repro.verify.generator import random_network


def _assert_recovered(inj, net, result):
    assert [r for r in inj.unrecovered() if r.kind != "slow"] == []
    assert exhaustive_equivalence_check(net, result.network,
                                        outputs=net.outputs)


def _recovery_kinds(inj):
    return {r.kind for r in inj.records if r.phase == "recovery"}


def test_lshaped_crash_reassigns_block():
    net = random_network(21, family="shared")
    inj = FaultInjector(FaultPlan.parse("crash:1@4"))
    res = lshaped_kernel_extract(net, 3, faults=inj)
    _assert_recovered(inj, net, res)
    assert inj.dead == {1}
    assert {"detect", "reassign"} <= _recovery_kinds(inj)


def test_lshaped_permanent_drop_is_replayed_or_resynced():
    net = random_network(22, family="dense")
    # Three consecutive failures beat max_retransmits=2: permanent loss.
    inj = FaultInjector(FaultPlan.parse("drop:2*3,drop:9*3"))
    res = lshaped_kernel_extract(net, 3, faults=inj)
    _assert_recovered(inj, net, res)
    kinds = _recovery_kinds(inj)
    assert kinds & {"replay", "resync", "rebuild"}


def test_lshaped_crash_plus_drop_mixed_plan():
    net = random_network(23, family="shared")
    inj = FaultInjector(FaultPlan.parse("crash:2@5,drop:4*3,dup:6,corrupt:8"))
    res = lshaped_kernel_extract(net, 4, faults=inj)
    _assert_recovered(inj, net, res)


def test_lshaped_never_kills_last_survivor():
    net = random_network(24, family="dense")
    inj = FaultInjector(FaultPlan.parse("crash:0@1,crash:1@1,crash:2@1"))
    res = lshaped_kernel_extract(net, 3, faults=inj)
    _assert_recovered(inj, net, res)
    assert len(inj.dead) == 2  # one processor always survives


def test_lshaped_quality_near_fault_free_on_circuit():
    net = load_circuit("dalu", scale=0.25)
    base = lshaped_kernel_extract(net, 4)
    inj = FaultInjector(FaultPlan.parse("crash:1@6,drop:12*3"))
    res = lshaped_kernel_extract(net, 4, faults=inj)
    assert [r for r in inj.unrecovered() if r.kind != "slow"] == []
    assert res.final_lc <= base.final_lc * 1.05


def test_replicated_crash_redistributes():
    net = random_network(25, family="dense")
    inj = FaultInjector(FaultPlan.parse("crash:1@3"))
    res = replicated_kernel_extract(net, 3, faults=inj)
    _assert_recovered(inj, net, res)
    assert "redistribute" in _recovery_kinds(inj)


def test_replicated_slowdown_is_absorbed():
    net = random_network(26, family="shared")
    inj = FaultInjector(FaultPlan.parse("slow:1x5@1-3"))
    base = replicated_kernel_extract(net, 3)
    res = replicated_kernel_extract(net, 3, faults=inj)
    _assert_recovered(inj, net, res)
    assert "absorb" in _recovery_kinds(inj)
    # Slowdowns cost time, never quality.
    assert res.final_lc == base.final_lc
    assert res.parallel_time >= base.parallel_time


def test_independent_crash_refactors_orphan_block():
    net = random_network(27, family="sparse")
    inj = FaultInjector(FaultPlan.parse("crash:1@2"))
    res = independent_kernel_extract(net, 3, faults=inj)
    _assert_recovered(inj, net, res)
    kinds = _recovery_kinds(inj)
    assert kinds & {"refactor", "retire"}


def test_independent_late_crash_retires():
    net = random_network(28, family="dense")
    inj = FaultInjector(FaultPlan.parse("crash:2@40"))
    res = independent_kernel_extract(net, 3, faults=inj)
    _assert_recovered(inj, net, res)


@pytest.mark.parametrize("seed", range(6))
def test_random_single_plans_recover_everywhere(seed):
    net = random_network(100 + seed, family="shared")
    for nprocs, runner in (
        (3, lshaped_kernel_extract),
        (3, replicated_kernel_extract),
        (3, independent_kernel_extract),
    ):
        inj = FaultInjector(FaultPlan.random_single(seed, nprocs), seed=seed)
        res = runner(net, nprocs, faults=inj)
        _assert_recovered(inj, net, res)
