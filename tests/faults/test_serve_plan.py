"""Serve-level half of the FaultPlan grammar: parse/render/env plumbing."""

import pytest

from repro.faults.plan import (
    ALL_FAULT_KINDS,
    ENV_SERVE_PLAN,
    FAULT_KINDS,
    SERVE_FAULT_KINDS,
    FaultEvent,
    FaultPlan,
    serve_plan_from_env,
)


def test_kind_sets_are_disjoint_and_complete():
    assert not set(FAULT_KINDS) & set(SERVE_FAULT_KINDS)
    assert set(ALL_FAULT_KINDS) == set(FAULT_KINDS) | set(SERVE_FAULT_KINDS)


@pytest.mark.parametrize("spec", [
    "gw-restart@3",
    "disk-full@PUT-0",
    "worker-kill:1",
    "worker-kill:0*3",
    "worker-slow:1x4",
    "cache-corrupt:2",
    "gw-restart@2,worker-slow:0x2.5,cache-corrupt:1",
])
def test_serve_specs_round_trip(spec):
    plan = FaultPlan.parse(spec)
    assert FaultPlan.parse(plan.render()).render() == plan.render()
    for ev in plan.events:
        assert ev.serve_level
        assert ev.kind in SERVE_FAULT_KINDS


def test_mixed_machine_and_serve_spec():
    plan = FaultPlan.parse("crash:1@3,gw-restart@2,drop:5")
    kinds = {ev.kind for ev in plan.events}
    assert kinds == {"crash", "gw-restart", "drop"}
    assert len(plan.serve_events()) == 1
    assert plan.serve_events("gw-restart")[0].at == 2
    # The machine-level view must not see serve events.
    assert {ev.kind for ev in plan.events if not ev.serve_level} \
        == {"crash", "drop"}


def test_serve_event_validation():
    with pytest.raises(ValueError):
        FaultEvent("worker-kill")  # needs a pid
    with pytest.raises(ValueError):
        FaultEvent("worker-slow", pid=0, factor=0.5)  # factor < 1
    with pytest.raises(ValueError):
        FaultEvent("not-a-kind")


def test_random_serve_is_deterministic_and_in_grammar():
    for seed in range(12):
        a = FaultPlan.random_serve(seed, shards=2)
        b = FaultPlan.random_serve(seed, shards=2)
        assert a.render() == b.render()
        assert not a.is_empty()
        assert all(ev.serve_level for ev in a.events)
        # and it round-trips through the spec grammar
        assert FaultPlan.parse(a.render()).render() == a.render()


def test_random_serve_sweep_covers_all_primaries():
    primaries = set()
    for seed in range(40):
        plan = FaultPlan.random_serve(seed, shards=2)
        primaries |= {ev.kind for ev in plan.events}
    assert {"gw-restart", "worker-kill", "disk-full"} <= primaries


def test_serve_plan_from_env(monkeypatch):
    monkeypatch.delenv(ENV_SERVE_PLAN, raising=False)
    assert serve_plan_from_env() is None
    monkeypatch.setenv(ENV_SERVE_PLAN, "disk-full@PUT-2,worker-slow:1x3")
    plan = serve_plan_from_env()
    assert plan is not None
    assert plan.serve_events("disk-full")[0].at == 2
    assert plan.serve_events("worker-slow")[0].factor == 3.0
    # A machine-only plan in the env is not a serve plan.
    monkeypatch.setenv(ENV_SERVE_PLAN, "crash:1@3")
    assert serve_plan_from_env() is None


def test_serve_plan_from_env_bad_spec(monkeypatch):
    monkeypatch.setenv(ENV_SERVE_PLAN, "gw-restart@nope")
    with pytest.raises(ValueError):
        serve_plan_from_env()


def test_events_sort_stably_across_kind_families():
    plan = FaultPlan.parse("worker-kill:1,crash:0@2,gw-restart@2")
    rendered = FaultPlan.parse(plan.render()).render()
    assert rendered == plan.render()
