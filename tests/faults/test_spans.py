"""Every fault/recovery record is also a span when tracing is active."""

from repro import obs
from repro.faults import FaultInjector, FaultPlan
from repro.parallel.lshaped import lshaped_kernel_extract
from repro.verify.generator import random_network


def _traced_run(plan_spec, nprocs=3, seed=31):
    net = random_network(seed, family="shared")
    inj = FaultInjector(FaultPlan.parse(plan_spec))
    tracer = obs.Tracer(name="chaos-test")
    with obs.use_tracer(tracer):
        lshaped_kernel_extract(net, nprocs, faults=inj)
    return inj, tracer.finished()


def test_fault_and_recovery_spans_emitted():
    inj, spans = _traced_run("crash:1@4,drop:5*3")
    names = [sp.name for sp in spans]
    fault_spans = [n for n in names if n.startswith("fault:")]
    recovery_spans = [n for n in names if n.startswith("recovery:")]
    fault_records = [r for r in inj.records if r.phase == "fault"]
    recovery_records = [r for r in inj.records if r.phase == "recovery"]
    assert len(fault_spans) == len(fault_records)
    assert len(recovery_spans) == len(recovery_records)
    assert "fault:crash" in names
    assert "recovery:detect" in names


def test_every_discrete_fault_has_a_matching_recovery_span():
    inj, spans = _traced_run("crash:2@3,drop:7,corrupt:11")
    paired = {r.paired_with for r in inj.records
              if r.phase == "recovery" and r.paired_with >= 0}
    for rec in inj.records:
        if rec.phase == "fault" and rec.kind != "slow":
            assert rec.seq in paired, f"unpaired fault record {rec}"
    # Each record's span carries its seq counter for cross-referencing.
    seqs = {sp.counters.get("seq") for sp in spans
            if sp.name.startswith(("fault:", "recovery:"))}
    assert {r.seq for r in inj.records} <= seqs


def test_no_spans_without_tracer():
    net = random_network(32, family="dense")
    inj = FaultInjector(FaultPlan.parse("crash:1@3"))
    lshaped_kernel_extract(net, 3, faults=inj)  # must not raise
    assert inj.dead == {1}
