import pytest

from repro.harness.calibration import ProfilePoint, derive_weights, profile_workloads


class TestProfileWorkloads:
    @pytest.fixture(scope="class")
    def points(self):
        return profile_workloads(repeats=1)

    def test_all_workloads_measured(self, points):
        assert {p.name for p in points} == {
            "kernels", "matrix", "exhaustive", "pingpong", "divide",
        }
        assert all(p.seconds > 0 for p in points)

    def test_dominant_kinds_distinct_enough(self, points):
        by_name = {p.name: p.dominant_kind() for p in points}
        assert by_name["kernels"] == "kernel_cube_visit"
        assert by_name["matrix"] in ("kc_entry", "kernel_cube_visit")
        assert by_name["exhaustive"] == "search_node"
        assert by_name["pingpong"] == "pingpong_round"

    def test_derive_weights(self, points):
        weights = derive_weights(points)
        assert weights["kernel_cube_visit"] == pytest.approx(1.0)
        for k, w in weights.items():
            assert w > 0

    def test_heavier_ops_cost_more(self, points):
        """The frozen model's ordering: a division or search node costs
        more than a single kernel-cube visit."""
        weights = derive_weights(points)
        if "divide_node" in weights:
            assert weights["divide_node"] > 1.0


def test_derive_weights_requires_base():
    with pytest.raises(ValueError):
        derive_weights(
            [ProfilePoint(name="x", seconds=1.0, counts={"search_node": 10})]
        )
