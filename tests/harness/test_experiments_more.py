"""Deeper checks on the experiment registry (miniature scale)."""

import pytest

from repro.harness.experiments import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE6,
    PROC_COUNTS,
    get_circuit,
    run_table3,
    run_table4,
)


class TestPaperReferenceData:
    def test_processor_counts_match_paper(self):
        assert PROC_COUNTS == (2, 4, 6)

    def test_table2_dnf_circuits(self):
        assert PAPER_TABLE2["spla"] is None
        assert PAPER_TABLE2["ex1010"] is None
        assert PAPER_TABLE2["dalu"] == (2139, 1.46, 1.83, 1.97)

    def test_table3_superlinear_rows(self):
        # paper: ex1010 reaches 16.30 at 6 processors
        assert PAPER_TABLE3["ex1010"][3] == 16.30

    def test_table6_values(self):
        assert PAPER_TABLE6["ex1010"][3] == 11.48
        assert PAPER_TABLE4["misex3"][0] == 1142


class TestCaching:
    def test_get_circuit_cached_and_immutable_usage(self):
        a = get_circuit("misex3", 0.03)
        b = get_circuit("misex3", 0.03)
        assert a is b

    def test_distinct_scales_distinct_objects(self):
        assert get_circuit("misex3", 0.03) is not get_circuit("misex3", 0.04)


class TestTableShapes:
    def test_table3_columns(self):
        t = run_table3(scale=0.03, circuits=["misex3"], procs=[2, 3])
        assert t.columns[0] == "circuit"
        assert "LC@3p" in t.columns
        assert len(t.rows) == 1
        assert len(t.rows[0]) == len(t.columns)

    def test_table4_row_values_sane(self):
        t = run_table4(scale=0.03, circuits=["misex3"], ways=[2])
        row = t.rows[0]
        initial, sis, two_way = row[1], row[2], row[3]
        assert sis <= initial
        assert two_way <= initial

    def test_notes_present(self):
        t = run_table4(scale=0.03, circuits=["misex3"], ways=[2])
        assert t.notes
