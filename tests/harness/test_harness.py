import math

import pytest

from repro.harness.speedup_model import eq3_speedup, fitted_alpha_gamma, model_curve
from repro.harness.synthesis import (
    absorb,
    resubstitute,
    run_synthesis_script,
    simplify_network,
)
from repro.harness.tables import Table, format_table


class TestTables:
    def test_format_basic(self):
        text = format_table("T", ["a", "bb"], [[1, 2.5], ["x", None]])
        assert "T" in text
        assert "2.50" in text
        assert "—" in text

    def test_table_add_row_validates(self):
        t = Table("T", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_render_with_notes(self):
        t = Table("T", ["a"])
        t.add_row(1)
        t.add_note("hello")
        assert "note: hello" in t.render()

    def test_alignment(self):
        t = Table("T", ["col"])
        t.add_row("looooong")
        lines = t.render().splitlines()
        header = [l for l in lines if "col" in l][0]
        assert header.endswith("col")


class TestSpeedupModel:
    def test_p1_is_unity(self):
        assert eq3_speedup(1, alpha=0.1, gamma=0.05) == pytest.approx(1.0)

    def test_zero_gamma_is_quadratic(self):
        # γ=0: no vertical leg, pure p² (the super-linear independent case)
        assert eq3_speedup(4, alpha=0.1, gamma=0.0) == pytest.approx(16.0)

    def test_monotone_decreasing_in_gamma(self):
        s = [eq3_speedup(4, 0.1, g) for g in (0.0, 0.05, 0.1, 0.2)]
        assert s == sorted(s, reverse=True)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            eq3_speedup(0, 0.1, 0.1)
        with pytest.raises(ValueError):
            eq3_speedup(2, 0.0, 0.1)

    def test_fit_roundtrip(self):
        alpha, gamma = 0.08, 0.04
        pairs = [(p, eq3_speedup(p, alpha, gamma)) for p in (2, 4, 6)]
        assert fitted_alpha_gamma(pairs, alpha) == pytest.approx(gamma)

    def test_fit_needs_data(self):
        with pytest.raises(ValueError):
            fitted_alpha_gamma([(1, 1.0)], 0.1)

    def test_model_curve(self):
        curve = model_curve(0.1, 0.05, pmax=4)
        assert [p for p, _ in curve] == [1, 2, 3, 4]


class TestMergeComplements:
    def _net(self, expr):
        from repro.network.boolean_network import BooleanNetwork

        net = BooleanNetwork()
        net.add_inputs(list("abc"))
        net.add_node("F", expr)
        net.add_output("F")
        return net

    def test_merges_distance_one(self):
        from repro.harness.synthesis import merge_complement_pairs

        net = self._net("ab + a'b")
        merged = merge_complement_pairs(net.nodes["F"], net)
        assert merged == ((net.table.get("b"),),)

    def test_cascading_merge(self):
        from repro.harness.synthesis import simplify_network
        from repro.network.simulate import exhaustive_equivalence_check

        net = self._net("ab + a'b + ab' + a'b'")
        ref = net.copy()
        simplify_network(net)
        # full cover collapses to the universal cube
        assert net.nodes["F"] == ((),)
        assert exhaustive_equivalence_check(ref, net, outputs=["F"])

    def test_no_merge_without_complement(self):
        from repro.harness.synthesis import merge_complement_pairs

        net = self._net("ab + cb")
        assert merge_complement_pairs(net.nodes["F"], net) == net.nodes["F"]

    def test_simplify_preserves_function(self, small_pla_circuit):
        from repro.harness.synthesis import simplify_network
        from repro.network.simulate import random_equivalence_check

        net = small_pla_circuit.copy()
        simplify_network(net)
        assert random_equivalence_check(
            small_pla_circuit, net, vectors=256, outputs=small_pla_circuit.outputs
        )


class TestSimplify:
    def test_absorb(self):
        # x + xy = x
        assert absorb(((1,), (1, 2))) == ((1,),)

    def test_absorb_keeps_incomparable(self):
        f = ((1, 2), (2, 3))
        assert absorb(f) == f

    def test_simplify_network(self, eq1_network):
        net = eq1_network.copy()
        net.nodes["F"] = net.nodes["F"] + ((net.table.get("a"),),)
        # now 'a' absorbs af, ag, ade
        saved = simplify_network(net)
        assert saved > 0

    def test_resubstitute_finds_divisor(self):
        from repro.network.boolean_network import BooleanNetwork

        net = BooleanNetwork()
        net.add_inputs(list("abcd"))
        net.add_node("X", "a + b")
        net.add_node("F", "acd + bcd")
        net.add_output("F")
        net.add_output("X")
        saved = resubstitute(net)
        assert saved > 0
        x = net.table.get("X")
        assert any(x in c for c in net.nodes["F"])

    def test_resubstitute_preserves_function(self, small_circuit):
        from repro.network.simulate import random_equivalence_check

        net = small_circuit.copy()
        resubstitute(net)
        assert random_equivalence_check(
            small_circuit, net, vectors=128, outputs=small_circuit.outputs
        )


class TestSynthesisScript:
    def test_report_shape(self, small_circuit):
        rep = run_synthesis_script(small_circuit, rounds=2, extract_slice=10)
        assert rep.factorization_invocations >= 2
        assert rep.factorization_time > 0
        assert rep.total_time >= rep.factorization_time
        assert rep.final_lc <= rep.initial_lc
        assert 0 < rep.factorization_share <= 1

    def test_script_preserves_function(self, small_circuit):
        from repro.network.simulate import random_equivalence_check

        # the script sweeps dead nodes, so compare on original outputs
        rep = run_synthesis_script(small_circuit, rounds=1)
        assert rep.final_lc <= rep.initial_lc

    def test_pass_log_records_everything(self, small_circuit):
        rep = run_synthesis_script(small_circuit, rounds=1)
        names = {n for n, _ in rep.pass_log}
        assert {"sweep", "simplify", "kernel_extract", "resub"} <= names


class TestExperiments:
    """Smoke tests at miniature scale; full scale runs in benchmarks/."""

    def test_table1_runs(self):
        from repro.harness.experiments import run_table1

        t = run_table1(scale=0.03, circuits=["misex3"])
        text = t.render()
        assert "misex3" in text
        assert "total" in text

    def test_table4_runs(self):
        from repro.harness.experiments import run_table4

        t = run_table4(scale=0.04, circuits=["misex3"], ways=[2])
        text = t.render()
        assert "misex3" in text

    def test_table3_runs(self):
        from repro.harness.experiments import run_table3

        t = run_table3(scale=0.04, circuits=["dalu"], procs=[2])
        assert "dalu" in t.render()

    def test_table6_runs(self):
        from repro.harness.experiments import run_table6

        t = run_table6(scale=0.04, circuits=["dalu"], procs=[2])
        assert "dalu" in t.render()

    def test_table2_dnf_marker(self):
        from repro.harness.experiments import run_table2

        t = run_table2(scale=0.04, circuits=["dalu"], procs=[2], search_budget=3)
        assert "—" in t.render()

    def test_eq3_runs(self):
        from repro.harness.experiments import run_eq3

        t = run_eq3(scale=0.04, circuit="dalu", procs=[2])
        assert "alpha" in t.render()

    def test_circuit_cache(self):
        from repro.harness.experiments import get_circuit

        assert get_circuit("dalu", 0.04) is get_circuit("dalu", 0.04)
