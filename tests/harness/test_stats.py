import pytest

from repro.harness.stats import NetworkStats, collect_stats, network_depth
from repro.network.boolean_network import BooleanNetwork


class TestDepth:
    def test_two_level_depth_one(self, eq1_network):
        assert network_depth(eq1_network) == 1

    def test_chain_depth(self):
        from repro.circuits.examples import chain_network

        assert network_depth(chain_network(5)) == 5

    def test_empty(self):
        net = BooleanNetwork()
        net.add_input("a")
        assert network_depth(net) == 0

    def test_extraction_deepens(self, eq1_network):
        from repro.rectangles.cover import kernel_extract

        net = eq1_network.copy()
        kernel_extract(net)
        assert network_depth(net) > 1


class TestCollect:
    def test_eq1_snapshot(self, eq1_network):
        s = collect_stats(eq1_network)
        assert s.inputs == 7
        assert s.outputs == 3
        assert s.nodes == 3
        assert s.literals == 33
        assert s.cubes == 13
        assert 0 < s.factored_literals <= 33
        assert s.kc_rows == 13
        assert 0 < s.kc_sparsity < 1

    def test_skip_factored(self, eq1_network):
        s = collect_stats(eq1_network, with_factored=False)
        assert s.factored_literals == s.literals

    def test_render_contains_fields(self, eq1_network):
        text = collect_stats(eq1_network).render()
        assert "lits(sop)=33" in text
        assert "depth=1" in text

    def test_fanout_tracked(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("x", "a")
        net.add_node("p", "x")
        net.add_node("q", "x")
        net.add_output("p")
        net.add_output("q")
        s = collect_stats(net, with_factored=False)
        assert s.max_fanout == 2


def test_cli_stats(capsys):
    from repro.cli import main

    assert main(["stats", "example"]) == 0
    out = capsys.readouterr().out
    assert "lits(sop)=33" in out
