"""ProcessBackend serial-fallback paths (unpicklable fn, broken pool)."""

import concurrent.futures
import pickle

import pytest

from repro.machine import backend as backend_mod
from repro.machine.backend import ProcessBackend


class _UnpicklableFn:
    """A callable whose pickling always fails."""

    def __reduce__(self):
        raise pickle.PicklingError("deliberately unpicklable")

    def __call__(self, x):
        return x * 10


def test_unpicklable_fn_falls_back_to_serial():
    # Regression: the docstring promises serial fallback when the pool
    # cannot be used, but only OSError/PermissionError were caught — a
    # PicklingError from an unpicklable fn raised straight through.
    backend = ProcessBackend(2)
    assert backend.map(_UnpicklableFn(), [1, 2, 3]) == [10, 20, 30]


def test_broken_process_pool_falls_back_to_serial(monkeypatch):
    class _BrokenPool:
        def __init__(self, *args, **kwargs):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def map(self, fn, items):
            raise concurrent.futures.process.BrokenProcessPool(
                "worker died abruptly"
            )

    monkeypatch.setattr(
        backend_mod.concurrent.futures, "ProcessPoolExecutor", _BrokenPool
    )
    backend = ProcessBackend(2)
    assert backend.map(_double, [1, 2, 3]) == [2, 4, 6]


def test_unrelated_errors_still_raise(monkeypatch):
    class _ExplodingPool:
        def __init__(self, *args, **kwargs):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def map(self, fn, items):
            raise RuntimeError("not a pool-availability problem")

    monkeypatch.setattr(
        backend_mod.concurrent.futures, "ProcessPoolExecutor", _ExplodingPool
    )
    with pytest.raises(RuntimeError):
        ProcessBackend(2).map(_double, [1])


def _double(x):
    return x * 2
