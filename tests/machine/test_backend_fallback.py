"""Backend serial-fallback paths (unpicklable fn, broken/exhausted pools)."""

import concurrent.futures
import pickle

import pytest

from repro.machine import backend as backend_mod
from repro.machine.backend import (
    ProcessBackend,
    ThreadBackend,
    TransientBackendError,
    install_backend_fault_hook,
)


class _UnpicklableFn:
    """A callable whose pickling always fails."""

    def __reduce__(self):
        raise pickle.PicklingError("deliberately unpicklable")

    def __call__(self, x):
        return x * 10


def test_unpicklable_fn_falls_back_to_serial():
    # Regression: the docstring promises serial fallback when the pool
    # cannot be used, but only OSError/PermissionError were caught — a
    # PicklingError from an unpicklable fn raised straight through.
    backend = ProcessBackend(2)
    assert backend.map(_UnpicklableFn(), [1, 2, 3]) == [10, 20, 30]


def test_broken_process_pool_falls_back_to_serial(monkeypatch):
    class _BrokenPool:
        def __init__(self, *args, **kwargs):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def map(self, fn, items):
            raise concurrent.futures.process.BrokenProcessPool(
                "worker died abruptly"
            )

    monkeypatch.setattr(
        backend_mod.concurrent.futures, "ProcessPoolExecutor", _BrokenPool
    )
    backend = ProcessBackend(2)
    assert backend.map(_double, [1, 2, 3]) == [2, 4, 6]


def test_unrelated_errors_still_raise(monkeypatch):
    class _ExplodingPool:
        def __init__(self, *args, **kwargs):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def map(self, fn, items):
            raise RuntimeError("not a pool-availability problem")

    monkeypatch.setattr(
        backend_mod.concurrent.futures, "ProcessPoolExecutor", _ExplodingPool
    )
    with pytest.raises(RuntimeError):
        ProcessBackend(2).map(_double, [1])


def test_thread_exhaustion_falls_back_to_serial(monkeypatch):
    class _ExhaustedPool:
        def __init__(self, *args, **kwargs):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def map(self, fn, items):
            raise RuntimeError("can't start new thread")

    monkeypatch.setattr(
        backend_mod.concurrent.futures, "ThreadPoolExecutor", _ExhaustedPool
    )
    assert ThreadBackend(2).map(_double, [1, 2, 3]) == [2, 4, 6]


def test_thread_unrelated_runtime_error_still_raises(monkeypatch):
    class _ExplodingPool:
        def __init__(self, *args, **kwargs):
            pass

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def map(self, fn, items):
            raise RuntimeError("not an exhaustion problem")

    monkeypatch.setattr(
        backend_mod.concurrent.futures, "ThreadPoolExecutor", _ExplodingPool
    )
    with pytest.raises(RuntimeError):
        ThreadBackend(2).map(_double, [1])


def test_backend_fault_hook_degrades_to_serial():
    seen = []

    def hook(name):
        seen.append(name)
        raise TransientBackendError("injected")

    install_backend_fault_hook(hook)
    try:
        assert ThreadBackend(2).map(_double, [1, 2]) == [2, 4]
        assert ProcessBackend(2).map(_double, [3]) == [6]
    finally:
        install_backend_fault_hook(None)
    assert seen == ["thread", "process"]


def test_backend_fault_hook_cleared_restores_pool_path():
    install_backend_fault_hook(None)
    assert ThreadBackend(2).map(_double, [1, 2, 3]) == [2, 4, 6]


def _double(x):
    return x * 2
