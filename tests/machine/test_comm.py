"""Tests for the MPI-style SPMD layer."""

import pytest

from repro.machine.comm import Comm, payload_words, run_spmd
from repro.machine.simulator import SimulatedMachine


class TestPayloadWords:
    def test_scalars(self):
        assert payload_words(1) == 1
        assert payload_words(None) == 1

    def test_containers(self):
        assert payload_words([1, 2, 3]) == 4
        assert payload_words({"a": 1}) >= 2

    def test_strings_scale(self):
        assert payload_words("x" * 80) == 10


class TestCollectives:
    def test_bcast(self):
        machine = SimulatedMachine(4)

        def program(comm, proc):
            value = 42 if comm.rank == 0 else None
            got = yield comm.bcast(value, root=0)
            return got

        assert run_spmd(machine, program) == [42, 42, 42, 42]
        assert machine.elapsed() > 0

    def test_gather(self):
        machine = SimulatedMachine(3)

        def program(comm, proc):
            got = yield comm.gather(comm.rank * 10, root=1)
            return got

        out = run_spmd(machine, program)
        assert out[1] == [0, 10, 20]
        assert out[0] is None and out[2] is None

    def test_allgather(self):
        machine = SimulatedMachine(3)

        def program(comm, proc):
            got = yield comm.allgather(comm.rank + 1)
            return sum(got)

        assert run_spmd(machine, program) == [6, 6, 6]

    def test_scatter(self):
        machine = SimulatedMachine(3)

        def program(comm, proc):
            data = [7, 8, 9] if comm.rank == 0 else None
            got = yield comm.scatter(data, root=0)
            return got

        assert run_spmd(machine, program) == [7, 8, 9]

    def test_barrier_aligns(self):
        machine = SimulatedMachine(2)

        def program(comm, proc):
            proc.meter.charge("kc_entry", 100 * (comm.rank + 1))
            yield comm.barrier()
            return proc.clock

        out = run_spmd(machine, program)
        assert out[0] == out[1]


class TestPointToPoint:
    def test_send_recv(self):
        machine = SimulatedMachine(2)

        def program(comm, proc):
            if comm.rank == 0:
                yield comm.send({"k": [1, 2]}, dest=1)
                return "sent"
            got = yield comm.recv(source=0)
            return got

        out = run_spmd(machine, program)
        assert out == ["sent", {"k": [1, 2]}]

    def test_ring(self):
        machine = SimulatedMachine(4)

        def program(comm, proc):
            nxt = (comm.rank + 1) % comm.size
            prev = (comm.rank - 1) % comm.size
            if comm.rank == 0:
                yield comm.send(comm.rank, dest=nxt)
                got = yield comm.recv(source=prev)
                return got
            got = yield comm.recv(source=prev)
            yield comm.send(got + comm.rank, dest=nxt)
            return got

        out = run_spmd(machine, program)
        assert out[0] == 0 + 1 + 2 + 3  # sum accumulated around the ring

    def test_deadlock_detected(self):
        machine = SimulatedMachine(2)

        def program(comm, proc):
            got = yield comm.recv(source=1 - comm.rank)  # both receive
            return got

        with pytest.raises(RuntimeError, match="deadlock"):
            run_spmd(machine, program)


class TestSpmdKernelGeneration:
    def test_distributed_kernel_generation(self, eq1_network):
        """The Section 3 kernel-generation phase written in SPMD style."""
        from repro.algebra.kernels import kernels

        machine = SimulatedMachine(2)
        blocks = [["F"], ["G", "H"]]

        def program(comm, proc, block):
            mine = {
                n: kernels(eq1_network.nodes[n], meter=proc.meter)
                for n in block
            }
            everyone = yield comm.allgather(mine)
            merged = {}
            for part in everyone:
                merged.update(part)
            return sorted(merged)

        out = run_spmd(machine, program, blocks)
        assert out[0] == out[1] == ["F", "G", "H"]
        # kernel generation was charged to each rank's own clock
        assert all(p.meter.counts.get("kernel_cube_visit", 0) > 0
                   for p in machine.procs)

    def test_per_rank_args(self):
        machine = SimulatedMachine(3)

        def program(comm, proc, a, b):
            yield comm.barrier()
            return a + b

        out = run_spmd(machine, program, [1, 2, 3], [10, 20, 30])
        assert out == [11, 22, 33]
