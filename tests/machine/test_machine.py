import pytest

from repro.machine.backend import ProcessBackend, SerialBackend, ThreadBackend
from repro.machine.costmodel import CostMeter, CostModel, DEFAULT_COST_MODEL
from repro.machine.simulator import SimulatedMachine, sequential_time_of


class TestCostMeter:
    def test_charge_accumulates(self):
        m = CostMeter()
        m.charge("x", 2)
        m.charge("x")
        assert m.counts["x"] == 3

    def test_merge(self):
        a, b = CostMeter(), CostMeter()
        a.charge("x", 1)
        b.charge("x", 2)
        b.charge("y", 5)
        a.merge(b)
        assert a.counts == {"x": 3, "y": 5}

    def test_total_uses_weights(self):
        m = CostMeter()
        m.charge("kernel_cube_visit", 10)
        model = CostModel(weights={"kernel_cube_visit": 2.0})
        assert m.total(model) == 20.0

    def test_unknown_kind_uses_default_weight(self):
        m = CostMeter()
        m.charge("never_heard_of_it", 4)
        model = CostModel(weights={}, default_weight=3.0)
        assert m.total(model) == 12.0

    def test_snapshot_is_copy(self):
        m = CostMeter()
        m.charge("x")
        snap = m.snapshot()
        m.charge("x")
        assert snap == {"x": 1.0}

    def test_reset(self):
        m = CostMeter()
        m.charge("x")
        m.reset()
        assert m.counts == {}


class TestSimulatedMachine:
    def test_phase_advances_only_working_clock(self):
        mach = SimulatedMachine(3)

        def work(proc):
            if proc.pid == 1:
                proc.meter.charge("kc_entry", 100)

        mach.run_phase(work)
        assert mach.procs[1].clock > 0
        assert mach.procs[0].clock == 0

    def test_elapsed_is_max_clock(self):
        mach = SimulatedMachine(2)
        mach.run_phase(lambda p: p.meter.charge("kc_entry", 10 * (p.pid + 1)))
        assert mach.elapsed() == mach.procs[1].clock

    def test_barrier_aligns_clocks(self):
        mach = SimulatedMachine(2)
        mach.run_phase(lambda p: p.meter.charge("kc_entry", 10 * (p.pid + 1)))
        mach.barrier()
        assert mach.procs[0].clock == mach.procs[1].clock
        assert mach.procs[0].clock > mach.model.barrier_cost

    def test_barrier_costs(self):
        mach = SimulatedMachine(2)
        mach.barrier()
        assert all(p.clock == mach.model.barrier_cost for p in mach.procs)

    def test_send_delays_receiver(self):
        mach = SimulatedMachine(2)
        mach.run_phase(lambda p: p.meter.charge("kc_entry", 100), procs=[0])
        sender_before = mach.procs[0].clock
        mach.send(0, 1, words=50)
        assert mach.procs[0].clock > sender_before
        assert mach.procs[1].clock == mach.procs[0].clock

    def test_send_to_self_is_noop(self):
        mach = SimulatedMachine(2)
        mach.send(0, 0, words=1000)
        assert mach.elapsed() == 0

    def test_broadcast_delays_everyone(self):
        mach = SimulatedMachine(4)
        mach.broadcast(0, words=10)
        assert all(p.clock > 0 for p in mach.procs)

    def test_speedup_against(self):
        mach = SimulatedMachine(2)
        mach.run_phase(lambda p: p.meter.charge("kc_entry", 100))
        assert mach.speedup_against(2 * mach.elapsed()) == pytest.approx(2.0)

    def test_total_work_sums_compute(self):
        mach = SimulatedMachine(2)
        mach.run_phase(lambda p: p.meter.charge("kc_entry", 10))
        expected = 2 * 10 * DEFAULT_COST_MODEL.weight("kc_entry")
        assert mach.total_work() == pytest.approx(expected)

    def test_phase_results_in_pid_order(self):
        mach = SimulatedMachine(3)
        assert mach.run_phase(lambda p: p.pid) == [0, 1, 2]

    def test_selected_procs(self):
        mach = SimulatedMachine(3)
        out = mach.run_phase(lambda p: p.pid, procs=[2])
        assert out == [2]

    def test_needs_a_processor(self):
        with pytest.raises(ValueError):
            SimulatedMachine(0)

    def test_phases_recorded(self):
        mach = SimulatedMachine(1)
        mach.run_phase(lambda p: None, name="alpha")
        mach.barrier("beta")
        assert [ph.name for ph in mach.phases] == ["alpha", "beta"]


def test_sequential_time_of():
    m = CostMeter()
    m.charge("kc_entry", 4)
    assert sequential_time_of(m) == 4 * DEFAULT_COST_MODEL.weight("kc_entry")


def _square(x):
    return x * x


class TestBackends:
    @pytest.mark.parametrize(
        "backend", [SerialBackend(), ThreadBackend(2), ProcessBackend(2)]
    )
    def test_map(self, backend):
        assert backend.map(_square, [1, 2, 3]) == [1, 4, 9]

    @pytest.mark.parametrize(
        "backend", [SerialBackend(), ThreadBackend(2), ProcessBackend(2)]
    )
    def test_empty(self, backend):
        assert backend.map(_square, []) == []

    def test_order_preserved(self):
        assert ThreadBackend(4).map(_square, list(range(20))) == [
            x * x for x in range(20)
        ]
