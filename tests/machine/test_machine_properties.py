"""Property-based tests of the simulated machine's clock algebra."""

from hypothesis import given, settings, strategies as st

from repro.machine.costmodel import CostModel
from repro.machine.simulator import SimulatedMachine


ops = st.lists(
    st.one_of(
        st.tuples(st.just("work"), st.integers(0, 3), st.integers(0, 500)),
        st.tuples(st.just("barrier"), st.just(0), st.just(0)),
        st.tuples(st.just("send"), st.integers(0, 3), st.integers(0, 3)),
        st.tuples(st.just("bcast"), st.integers(0, 3), st.integers(0, 200)),
    ),
    min_size=1,
    max_size=25,
)


def run_ops(machine, sequence):
    for kind, a, b in sequence:
        if kind == "work":
            machine.run_phase(
                lambda p: p.meter.charge("kc_entry", b) if p.pid == a else None
            )
        elif kind == "barrier":
            machine.barrier()
        elif kind == "send":
            machine.send(a, b, words=10)
        elif kind == "bcast":
            machine.broadcast(a, words=b)


@settings(max_examples=60, deadline=None)
@given(ops)
def test_clocks_monotone(sequence):
    machine = SimulatedMachine(4)
    lows = [0.0] * 4
    for kind, a, b in sequence:
        run_ops(machine, [(kind, a, b)])
        for p in machine.procs:
            assert p.clock >= lows[p.pid] - 1e-9
            lows[p.pid] = p.clock


@settings(max_examples=60, deadline=None)
@given(ops)
def test_elapsed_is_max_and_barrier_equalizes(sequence):
    machine = SimulatedMachine(4)
    run_ops(machine, sequence)
    assert machine.elapsed() == max(p.clock for p in machine.procs)
    machine.barrier()
    clocks = {p.clock for p in machine.procs}
    assert len(clocks) == 1


@settings(max_examples=60, deadline=None)
@given(ops)
def test_total_work_ignores_waiting(sequence):
    machine = SimulatedMachine(4)
    run_ops(machine, sequence)
    expected = sum(
        b for kind, a, b in sequence if kind == "work"
    ) * machine.model.weight("kc_entry")
    assert machine.total_work() == expected


@settings(max_examples=40, deadline=None)
@given(ops, st.floats(min_value=0.1, max_value=10.0))
def test_uniform_weight_scaling_preserves_speedup_ratios(sequence, factor):
    """Scaling every cost uniformly must not change relative times."""
    base_model = CostModel()
    scaled = CostModel(
        weights={k: v * factor for k, v in base_model.weights.items()},
        default_weight=base_model.default_weight * factor,
        barrier_cost=base_model.barrier_cost * factor,
        word_cost=base_model.word_cost * factor,
        message_latency=base_model.message_latency * factor,
    )
    m1, m2 = SimulatedMachine(4, base_model), SimulatedMachine(4, scaled)
    run_ops(m1, sequence)
    run_ops(m2, sequence)
    if m1.elapsed() > 0:
        assert abs(m2.elapsed() / m1.elapsed() - factor) < 1e-6
