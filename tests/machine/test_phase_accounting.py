"""Phase-report accounting: what the benchmark introspection relies on."""

from repro.machine.simulator import PhaseReport, SimulatedMachine


class TestPhaseReports:
    def test_span_is_max(self):
        rep = PhaseReport("x", [1.0, 5.0, 3.0])
        assert rep.span == 5.0

    def test_phase_sequence_recorded_for_lshaped_setup(self, eq1_network):
        from repro.circuits.examples import example51_partition
        from repro.parallel.lshaped import build_lshaped_matrices

        machine = SimulatedMachine(2)
        build_lshaped_matrices(machine, eq1_network, list(example51_partition()), {})
        names = [p.name for p in machine.phases]
        assert "build-slab" in names
        assert "relabel" in names
        # gather/map messages only occur with >1 processor
        assert any(n in ("cube-gather", "cube-map", "Bij") for n in names)

    def test_replicated_phases_include_barriers(self, eq1_network):
        from repro.parallel.replicated import replicated_kernel_extract

        # run with tracking machine via the public entry point
        r = replicated_kernel_extract(eq1_network, 2)
        assert r.extractions >= 1

    def test_clocks_within_phase_reports(self):
        machine = SimulatedMachine(2)
        machine.run_phase(lambda p: p.meter.charge("kc_entry", 5), name="w")
        rep = machine.phases[-1]
        assert rep.name == "w"
        assert rep.clocks_after == [p.clock for p in machine.procs]
