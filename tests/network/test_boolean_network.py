import pytest

from repro.network.boolean_network import BooleanNetwork, base_signal


class TestConstruction:
    def test_add_input_idempotent(self):
        net = BooleanNetwork()
        net.add_input("a")
        net.add_input("a")
        assert net.inputs == ["a"]

    def test_add_node_from_text(self):
        net = BooleanNetwork()
        net.add_inputs(["a", "b"])
        net.add_node("f", "ab + a")
        assert net.literal_count("f") == 3

    def test_add_node_from_cubes(self):
        net = BooleanNetwork()
        net.add_inputs(["a", "b"])
        ids = [net.table.get("a"), net.table.get("b")]
        net.add_node("f", [ids, [ids[0]]])
        assert len(net.nodes["f"]) == 2

    def test_node_shadowing_input_rejected(self):
        net = BooleanNetwork()
        net.add_input("a")
        with pytest.raises(ValueError):
            net.add_node("a", "a")

    def test_duplicate_node_rejected(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("f", "a")
        with pytest.raises(ValueError):
            net.add_node("f", "a")

    def test_input_shadowing_node_rejected(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("f", "a")
        with pytest.raises(ValueError):
            net.add_input("f")

    def test_new_node_name_fresh(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("f", "a")
        name = net.new_node_name()
        assert name not in net.nodes
        assert not net.is_input(name)


class TestQueries:
    def test_literal_count_total(self, eq1_network):
        assert eq1_network.literal_count() == 33

    def test_literal_count_per_node(self, eq1_network):
        assert eq1_network.literal_count("H") == 6

    def test_fanin_strips_complements(self):
        net = BooleanNetwork()
        net.add_inputs(["a", "b"])
        net.add_node("f", "a'b + a")
        assert net.fanin_signals("f") == {"a", "b"}

    def test_fanout_map(self, eq1_network):
        fo = eq1_network.fanout_map()
        assert fo["a"] >= {"F", "G", "H"}
        assert fo["F"] == set()

    def test_topological_order(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("x", "a")
        net.add_node("y", "x")
        net.add_node("z", "y + x")
        order = net.topological_order()
        assert order.index("x") < order.index("y") < order.index("z")

    def test_cycle_detected(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("x", "a")
        net.add_node("y", "x")
        # force a cycle by editing expressions directly
        net.nodes["x"] = net.nodes["x"] + ((net.table.id_of("y"),),)
        with pytest.raises(ValueError, match="cycle"):
            net.topological_order()

    def test_validate_undefined_signal(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("f", "a")
        net.nodes["f"] = ((net.table.id_of("ghost"),),)
        with pytest.raises(ValueError, match="undefined"):
            net.validate()

    def test_validate_undefined_output(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_output("nope")
        with pytest.raises(ValueError, match="output"):
            net.validate()


class TestSweep:
    def test_sweep_removes_dead(self):
        net = BooleanNetwork()
        net.add_inputs(["a", "b"])
        net.add_node("live", "ab")
        net.add_node("dead", "a + b")
        net.add_output("live")
        removed = net.sweep()
        assert removed == 1
        assert "dead" not in net.nodes

    def test_sweep_keeps_transitive_support(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("x", "a")
        net.add_node("y", "x")
        net.add_output("y")
        assert net.sweep() == 0
        assert set(net.nodes) == {"x", "y"}


class TestCopySubnetworkMerge:
    def test_copy_independent(self, eq1_network):
        dup = eq1_network.copy()
        dup.add_node("new", "a + b")
        assert "new" not in eq1_network.nodes

    def test_subnetwork_boundary_inputs(self, eq1_network):
        sub = eq1_network.subnetwork(["F"])
        assert set(sub.nodes) == {"F"}
        assert set(sub.inputs) >= {"a", "b", "c"}
        assert sub.literal_count() == eq1_network.literal_count("F")

    def test_subnetwork_internal_edges(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("x", "a")
        net.add_node("y", "x")
        sub = net.subnetwork(["x", "y"])
        assert set(sub.nodes) == {"x", "y"}
        assert "x" not in sub.inputs

    def test_subnetwork_node_output_preserved(self, eq1_network):
        sub = eq1_network.subnetwork(["G", "H"])
        assert set(sub.outputs) == {"G", "H"}

    def test_merge_from_roundtrip(self, eq1_network):
        sub = eq1_network.subnetwork(["F"])
        merged = eq1_network.copy()
        merged.merge_from(sub)
        assert merged.nodes["F"] == eq1_network.nodes["F"]

    def test_merge_with_rename(self, eq1_network):
        sub = eq1_network.subnetwork(["F"])
        sub.add_node("[q0]", "a + b")
        merged = eq1_network.copy()
        merged.merge_from(sub, rename={"[q0]": "[fresh]"})
        assert "[fresh]" in merged.nodes
        assert "[q0]" not in merged.nodes


def test_base_signal():
    assert base_signal("a'") == "a"
    assert base_signal("a") == "a"
    assert base_signal("x''") == "x"
