"""Focused tests for alias-node collapsing (used by the L-shaped cleanup)."""

import pytest

from repro.network.boolean_network import BooleanNetwork
from repro.network.simulate import exhaustive_equivalence_check


def build(expr_by_node, inputs="abc", outputs=()):
    net = BooleanNetwork()
    net.add_inputs(list(inputs))
    for name, expr in expr_by_node.items():
        net.add_node(name, expr)
    for o in outputs:
        net.add_output(o)
    return net


class TestCollapseAliases:
    def test_simple_alias_removed(self):
        net = build({"x": "a + b", "y": "x", "F": "yc"}, outputs=["F"])
        ref = net.copy()
        assert net.collapse_aliases() == 1
        assert "y" not in net.nodes
        assert exhaustive_equivalence_check(ref, net, outputs=["F"])

    def test_alias_chain_fully_collapsed(self):
        net = build({"x": "ab", "y": "x", "z": "y", "F": "z + c"}, outputs=["F"])
        ref = net.copy()
        assert net.collapse_aliases() == 2
        assert set(net.nodes) == {"x", "F"}
        assert exhaustive_equivalence_check(ref, net, outputs=["F"])

    def test_complement_reference_rewritten(self):
        net = build({"x": "ab", "y": "x", "F": "y'c"}, outputs=["F"])
        ref = net.copy()
        assert net.collapse_aliases() == 1
        # F must now read x'
        names = {net.table.name_of(l) for c in net.nodes["F"] for l in c}
        assert "x'" in names
        assert exhaustive_equivalence_check(ref, net, outputs=["F"])

    def test_alias_of_complement(self):
        net = build({"y": "a'", "F": "yc"}, outputs=["F"])
        ref = net.copy()
        assert net.collapse_aliases() == 1
        names = {net.table.name_of(l) for c in net.nodes["F"] for l in c}
        assert "a'" in names
        assert exhaustive_equivalence_check(ref, net, outputs=["F"])

    def test_double_negation(self):
        net = build({"y": "a'", "F": "y'c"}, outputs=["F"])
        ref = net.copy()
        net.collapse_aliases()
        # y' where y = a' means plain a
        names = {net.table.name_of(l) for c in net.nodes["F"] for l in c}
        assert "a" in names and "a'" not in names
        assert exhaustive_equivalence_check(ref, net, outputs=["F"])

    def test_output_alias_kept(self):
        net = build({"x": "ab", "F": "x"}, outputs=["F"])
        assert net.collapse_aliases() == 0
        assert "F" in net.nodes

    def test_multi_literal_cube_not_an_alias(self):
        net = build({"x": "ab", "F": "x + c"}, outputs=["F"])
        assert net.collapse_aliases() == 0

    def test_multi_cube_not_an_alias(self):
        net = build({"x": "a + b", "F": "x + c"}, outputs=["F"])
        assert net.collapse_aliases() == 0
