"""Round-trip and parsing tests for the eqn / PLA / BLIF formats."""

import pytest

from repro.network.blif import read_blif, write_blif
from repro.network.boolean_network import BooleanNetwork
from repro.network.eqn import read_eqn, write_eqn
from repro.network.pla import read_pla, write_pla
from repro.network.simulate import exhaustive_equivalence_check, random_equivalence_check


class TestEqn:
    def test_roundtrip_eq1(self, eq1_network):
        text = write_eqn(eq1_network)
        back = read_eqn(text)
        assert back.literal_count() == 33
        assert random_equivalence_check(eq1_network, back)

    def test_roundtrip_generated(self, small_circuit):
        back = read_eqn(write_eqn(small_circuit))
        assert back.literal_count() == small_circuit.literal_count()
        assert random_equivalence_check(small_circuit, back, vectors=128)

    def test_constants(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("zero", "0")
        net.add_node("one", "1")
        net.add_output("zero")
        net.add_output("one")
        back = read_eqn(write_eqn(net))
        assert back.nodes["zero"] == ()
        assert back.nodes["one"] == ((),)

    def test_comments_ignored(self):
        text = "# hi\nINORDER = a;\nOUTORDER = f;\nf = a; # trailing\n"
        net = read_eqn(text)
        assert net.inputs == ["a"]

    def test_malformed_raises(self):
        with pytest.raises(ValueError):
            read_eqn("INORDER = a;\nnonsense statement;")

    def test_file_io(self, tmp_path, eq1_network):
        from repro.network.eqn import load_eqn, save_eqn

        p = tmp_path / "eq1.eqn"
        save_eqn(eq1_network, str(p))
        assert load_eqn(str(p)).literal_count() == 33


SMALL_PLA = """\
.i 3
.o 2
.ilb a b c
.ob f g
.p 3
1-0 10
011 11
--1 01
.e
"""


class TestPla:
    def test_read_basic(self):
        net = read_pla(SMALL_PLA)
        assert net.inputs == ["a", "b", "c"]
        assert set(net.outputs) == {"f", "g"}
        # f = a c' + b c ; g = b c + c
        assert len(net.nodes["f"]) == 2
        assert len(net.nodes["g"]) == 2

    def test_complement_literals(self):
        net = read_pla(SMALL_PLA)
        names = {net.table.name_of(l) for c in net.nodes["f"] for l in c}
        assert "c'" in names

    def test_roundtrip(self):
        net = read_pla(SMALL_PLA)
        back = read_pla(write_pla(net))
        assert random_equivalence_check(net, back)

    def test_default_labels(self):
        net = read_pla(".i 2\n.o 1\n11 1\n.e\n")
        assert net.inputs == ["x0", "x1"]
        assert net.outputs == ["z0"]

    def test_juxtaposed_fields(self):
        net = read_pla(".i 2\n.o 1\n111\n.e\n")
        assert len(net.nodes["z0"]) == 1

    def test_missing_header_raises(self):
        with pytest.raises(ValueError):
            read_pla("11 1\n")

    def test_bad_char_raises(self):
        with pytest.raises(ValueError):
            read_pla(".i 2\n.o 1\n1x 1\n.e\n")

    def test_write_rejects_multilevel(self, eq1_network):
        net = eq1_network.copy()
        net.add_node("deep", "F + a")
        net.add_output("deep")
        with pytest.raises(ValueError, match="two-level"):
            write_pla(net)


SMALL_BLIF = """\
.model test
.inputs a b c
.outputs f
.names a b t
11 1
.names t c f
1- 1
01 1
.end
"""


class TestBlif:
    def test_read_basic(self):
        net = read_blif(SMALL_BLIF)
        assert net.inputs == ["a", "b", "c"]
        assert net.outputs == ["f"]
        assert set(net.nodes) == {"t", "f"}

    def test_semantics(self):
        net = read_blif(SMALL_BLIF)
        from repro.network.simulate import evaluate

        # f = t + t'c = ab + c (when ab=0)
        assert evaluate(net, {"a": 1, "b": 1, "c": 0})["f"] == 1
        assert evaluate(net, {"a": 0, "b": 1, "c": 1})["f"] == 1
        assert evaluate(net, {"a": 0, "b": 1, "c": 0})["f"] == 0

    def test_roundtrip(self, eq1_network):
        back = read_blif(write_blif(eq1_network))
        assert random_equivalence_check(eq1_network, back)
        assert back.literal_count() == eq1_network.literal_count()

    def test_continuation_lines(self):
        text = ".model m\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n"
        net = read_blif(text)
        assert net.inputs == ["a", "b"]

    def test_unsupported_directive(self):
        with pytest.raises(ValueError):
            read_blif(".model m\n.latch a b\n.end\n")

    def test_no_model_raises(self):
        with pytest.raises(ValueError):
            read_blif(".inputs a\n")


class TestCrossFormat:
    def test_pla_to_eqn_to_blif(self):
        net = read_pla(SMALL_PLA)
        via_eqn = read_eqn(write_eqn(net))
        via_blif = read_blif(write_blif(via_eqn))
        assert exhaustive_equivalence_check(net, via_blif)
