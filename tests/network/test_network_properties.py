"""Property-based tests for network-level operations."""

from hypothesis import given, settings, strategies as st

from repro.circuits.generators import GeneratorSpec, generate_circuit
from repro.network.eqn import read_eqn, write_eqn
from repro.network.blif import read_blif, write_blif
from repro.network.simulate import random_equivalence_check
from repro.network.transforms import eliminate


def tiny(seed: int, two_level: bool = False):
    return generate_circuit(
        GeneratorSpec(
            name=f"hp{seed}",
            seed=seed,
            n_inputs=8,
            target_lc=90,
            two_level=two_level,
            pool_size=4,
            products_per_node=(1, 3),
        )
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), two_level=st.booleans())
def test_eqn_roundtrip_preserves_everything(seed, two_level):
    net = tiny(seed, two_level)
    back = read_eqn(write_eqn(net))
    assert back.literal_count() == net.literal_count()
    assert sorted(back.nodes) == sorted(net.nodes)
    assert random_equivalence_check(net, back, vectors=64, outputs=net.outputs)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_blif_roundtrip_preserves_function(seed):
    net = tiny(seed, two_level=True)
    back = read_blif(write_blif(net))
    assert random_equivalence_check(net, back, vectors=64, outputs=net.outputs)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), threshold=st.integers(-2, 4))
def test_eliminate_preserves_function(seed, threshold):
    ref = tiny(seed)
    net = ref.copy()
    # only original outputs are protected; internal structure may collapse
    eliminate(net, threshold=threshold)
    net.validate()
    assert random_equivalence_check(ref, net, vectors=64, outputs=ref.outputs)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_subnetwork_merge_roundtrip(seed):
    net = tiny(seed)
    nodes = sorted(net.nodes)
    half = nodes[: len(nodes) // 2] or nodes
    sub = net.subnetwork(half)
    sub.validate()
    merged = net.copy()
    merged.merge_from(sub)
    assert merged.nodes == net.nodes


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_sweep_only_removes_dead(seed):
    net = tiny(seed)
    ref = net.copy()
    removed = net.sweep()
    # all nodes are outputs in generated circuits -> nothing is dead
    assert removed == 0
    assert net.nodes == ref.nodes


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_collapse_aliases_preserves_function(seed):
    ref = tiny(seed)
    net = ref.copy()
    # plant an alias chain reading an existing signal
    target = sorted(net.nodes)[0]
    net.add_node("[alias0]", [[net.table.id_of(target)]])
    net.add_node("[alias1]", [[net.table.id_of("[alias0]")]])
    net.add_node("[user]", [[net.table.id_of("[alias1]"), net.table.id_of(net.inputs[0])]])
    net.add_output("[user]")
    removed = net.collapse_aliases()
    assert removed == 2
    assert "[alias0]" not in net.nodes and "[alias1]" not in net.nodes
    ref2 = ref.copy()
    ref2.add_node("[user]", [[ref2.table.id_of(target), ref2.table.id_of(ref.inputs[0])]])
    ref2.add_output("[user]")
    assert random_equivalence_check(
        ref2, net, vectors=64, outputs=list(ref.outputs) + ["[user]"]
    )
