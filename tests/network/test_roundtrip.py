"""Netlist round-trips: every fuzz family through every format.

The writers are the boundary where the algebraic cube model (literal and
complement independent) meets Boolean semantics (``x·x' = 0``), so each
round-trip is checked with the exhaustive simulation oracle — and the
null-cube / constant-term regressions that motivated the writer fixes
are seeded by hand so they fail on the unfixed writers.
"""

import pytest

from repro.network.blif import read_blif, write_blif
from repro.network.boolean_network import BooleanNetwork, base_signal, cube_is_null
from repro.network.eqn import read_eqn, write_eqn
from repro.network.pla import read_pla, write_pla
from repro.network.simulate import exhaustive_equivalence_check
from repro.verify.generator import FAMILIES, random_network

SEEDS = (0, 1, 2)


def _two_level_projection(net: BooleanNetwork) -> BooleanNetwork:
    """The sub-network of nodes reading only primary inputs (PLA's
    contract), rebuilt on a fresh literal table."""
    pis = set(net.inputs)
    sub = BooleanNetwork(name=f"{net.name}_2l")
    for pi in net.inputs:
        sub.add_input(pi)
    for node, cubes in net.nodes.items():
        bases = {
            base_signal(net.table.name_of(lit)) for c in cubes for lit in c
        }
        if bases <= pis:
            sub.add_node(node, [
                [sub.table.id_of(net.table.name_of(lit)) for lit in c]
                for c in cubes
            ])
            sub.outputs.append(node)
    return sub


class TestFuzzFamilyRoundTrips:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_eqn(self, family, seed):
        net = random_network(seed, family=family)
        back = read_eqn(write_eqn(net))
        assert back.inputs == net.inputs
        assert back.outputs == net.outputs
        assert exhaustive_equivalence_check(net, back, outputs=net.outputs)

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_blif(self, family, seed):
        net = random_network(seed, family=family)
        back = read_blif(write_blif(net))
        assert back.inputs == net.inputs
        assert back.outputs == net.outputs
        assert exhaustive_equivalence_check(net, back, outputs=net.outputs)

    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_pla(self, family, seed):
        net = _two_level_projection(random_network(seed, family=family))
        if not net.outputs:
            pytest.skip(f"{family}/{seed}: no two-level nodes to project")
        back = read_pla(write_pla(net))
        assert back.inputs == net.inputs
        assert back.outputs == net.outputs
        assert exhaustive_equivalence_check(net, back, outputs=net.outputs)

    def test_pla_projection_is_not_vacuous(self):
        """Enough families actually exercise the PLA leg."""
        nonempty = sum(
            1 for family in FAMILIES for seed in SEEDS
            if _two_level_projection(random_network(seed, family=family)).outputs
        )
        assert nonempty >= len(FAMILIES) * len(SEEDS) // 2


# ----------------------------------------------------------------------
# hand-seeded regressions: null cubes (x·x') and constant nodes
# ----------------------------------------------------------------------


def _null_cube_network() -> BooleanNetwork:
    """f carries a contradictory cube next to a live one; g is all-null;
    h is a constant-0 node (empty cover)."""
    net = BooleanNetwork(name="nulls")
    for pi in ("a", "b", "c"):
        net.add_input(pi)
    t = net.table
    net.add_node("f", [
        [t.id_of("a"), t.id_of("a'")],            # x·x' = 0: must vanish
        [t.id_of("b"), t.id_of("c")],
    ])
    net.add_node("g", [[t.id_of("c"), t.id_of("c'")]])
    net.add_node("h", [])
    net.outputs = ["f", "g", "h"]
    return net


class TestNullCubeRegressions:
    def test_cube_is_null(self):
        net = _null_cube_network()
        t = net.table
        assert cube_is_null(t, [t.id_of("a"), t.id_of("a'")])
        assert cube_is_null(t, [t.id_of("a"), t.id_of("b"), t.id_of("a'")])
        assert not cube_is_null(t, [t.id_of("a"), t.id_of("b'")])
        assert not cube_is_null(t, [])

    def test_blif_roundtrip_drops_null_cubes(self):
        net = _null_cube_network()
        text = write_blif(net)
        back = read_blif(text)
        assert exhaustive_equivalence_check(net, back, outputs=net.outputs)
        # The dropped cube's variable must not survive as a fanin of f.
        assert all(
            base_signal(back.table.name_of(lit)) != "a"
            for cube in back.nodes["f"] for lit in cube
        )

    def test_pla_roundtrip_drops_null_cubes(self):
        net = _null_cube_network()
        text = write_pla(net)
        back = read_pla(text)
        assert exhaustive_equivalence_check(net, back, outputs=net.outputs)
        # A null cube must not become a row asserting an input pattern.
        assert ".p 1" in text

    def test_eqn_writer_normalizes_null_cubes(self):
        net = _null_cube_network()
        text = write_eqn(net)
        # f's null cube vanished, all-null g and the empty-cover h both
        # render as the constant 0.
        assert "a*a'" not in text
        assert "f = b*c;" in text
        assert "g = 0;" in text
        assert "h = 0;" in text
        back = read_eqn(text)
        assert exhaustive_equivalence_check(net, back, outputs=net.outputs)

    def test_fuzz_net_with_injected_null_cube(self):
        net = random_network(0, family="dense")
        t = net.table
        node = next(iter(net.nodes))
        pi = net.inputs[0]
        cubes = [list(c) for c in net.nodes[node]]
        cubes.append([t.id_of(pi), t.id_of(pi + "'")])
        net.set_expression(node, cubes)
        for write, read in ((write_eqn, read_eqn), (write_blif, read_blif)):
            back = read(write(net))
            assert exhaustive_equivalence_check(
                net, back, outputs=net.outputs
            ), f"{write.__name__} round-trip changed the function"


class TestReadEqnConstants:
    def test_strips_constant_one_factor(self):
        net = read_eqn("INORDER = a b;\nOUTORDER = f;\nf = 1 * a + b * 1;\n")
        t = net.table
        assert net.nodes["f"] == ((t.id_of("a"),), (t.id_of("b"),))

    def test_lone_one_term_is_constant_true(self):
        net = read_eqn("INORDER = a;\nOUTORDER = f;\nf = 1;\n")
        assert net.nodes["f"] == ((),)  # the empty cube: constant 1

    def test_lone_zero_term_is_dropped(self):
        net = read_eqn("INORDER = a;\nOUTORDER = f;\nf = a + 0;\n")
        t = net.table
        assert net.nodes["f"] == ((t.id_of("a"),),)

    def test_zero_rhs_is_constant_false(self):
        net = read_eqn("INORDER = a;\nOUTORDER = f;\nf = 0;\n")
        assert net.nodes["f"] == ()

    def test_rejects_zero_inside_product(self):
        with pytest.raises(ValueError, match="constant 0 inside product"):
            read_eqn("INORDER = a b;\nOUTORDER = f;\nf = a * 0 + b;\n")
