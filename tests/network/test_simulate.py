import pytest

from repro.network.boolean_network import BooleanNetwork
from repro.network.simulate import (
    evaluate,
    exhaustive_equivalence_check,
    random_equivalence_check,
)


@pytest.fixture
def xor_network():
    net = BooleanNetwork("xor")
    net.add_inputs(["a", "b"])
    net.add_node("y", "ab' + a'b")
    net.add_output("y")
    return net


class TestEvaluate:
    def test_truth_table_of_xor(self, xor_network):
        for a in (0, 1):
            for b in (0, 1):
                vals = evaluate(xor_network, {"a": a, "b": b})
                assert vals["y"] == (a ^ b)

    def test_bit_parallel(self, xor_network):
        vals = evaluate(xor_network, {"a": 0b0011, "b": 0b0101}, width=4)
        assert vals["y"] == 0b0110

    def test_multi_level(self):
        net = BooleanNetwork()
        net.add_inputs(["a", "b", "c"])
        net.add_node("x", "ab")
        net.add_node("y", "x + c")
        net.add_output("y")
        vals = evaluate(net, {"a": 1, "b": 1, "c": 0})
        assert vals["y"] == 1
        vals = evaluate(net, {"a": 1, "b": 0, "c": 0})
        assert vals["y"] == 0

    def test_complement_of_internal_node(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("x", "a")
        net.add_node("y", "x'")
        net.add_output("y")
        assert evaluate(net, {"a": 1})["y"] == 0
        assert evaluate(net, {"a": 0})["y"] == 1

    def test_constant_nodes(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("zero", "0")
        net.add_node("one", "1")
        vals = evaluate(net, {"a": 0})
        assert vals["zero"] == 0 and vals["one"] == 1

    def test_missing_input_raises(self, xor_network):
        with pytest.raises(KeyError):
            evaluate(xor_network, {"a": 1})


class TestEquivalence:
    def test_identical_networks_equivalent(self, eq1_network):
        assert random_equivalence_check(eq1_network, eq1_network.copy())

    def test_detects_difference(self, eq1_network):
        other = eq1_network.copy()
        other.nodes["H"] = other.nodes["H"][:1]  # drop a cube
        assert not random_equivalence_check(eq1_network, other, vectors=512)

    def test_factored_form_equivalent(self):
        flat = BooleanNetwork("flat")
        flat.add_inputs(["a", "b", "c", "d"])
        flat.add_node("F", "ac + bc + ad + bd")
        flat.add_output("F")
        factored = BooleanNetwork("factored")
        factored.add_inputs(["a", "b", "c", "d"])
        factored.add_node("x", "a + b")
        factored.add_node("F", "xc + xd")
        factored.add_output("F")
        assert random_equivalence_check(flat, factored)
        assert exhaustive_equivalence_check(flat, factored)

    def test_exhaustive_detects_difference(self):
        n1 = BooleanNetwork()
        n1.add_inputs(["a", "b"])
        n1.add_node("F", "ab")
        n1.add_output("F")
        n2 = BooleanNetwork()
        n2.add_inputs(["a", "b"])
        n2.add_node("F", "a + b")
        n2.add_output("F")
        assert not exhaustive_equivalence_check(n1, n2)

    def test_mismatched_inputs_rejected(self, eq1_network):
        other = BooleanNetwork()
        other.add_inputs(["zz"])
        other.add_node("F", "zz")
        with pytest.raises(ValueError):
            random_equivalence_check(eq1_network, other)

    def test_extra_inputs_in_b_rejected_symmetrically(self):
        # Regression: validation used to be one-directional (a minus b),
        # so extra primary inputs on b's side slipped past the check and
        # surfaced as a raw KeyError from evaluate() instead of the
        # documented ValueError.
        a = BooleanNetwork("a")
        a.add_inputs(["x"])
        a.add_node("F", "x")
        a.add_output("F")
        b = BooleanNetwork("b")
        b.add_inputs(["x", "y"])
        b.add_node("F", "x + y")
        b.add_output("F")
        with pytest.raises(ValueError, match="different primary inputs"):
            random_equivalence_check(a, b)
        with pytest.raises(ValueError, match="different primary inputs"):
            exhaustive_equivalence_check(a, b)

    def test_explicit_outputs(self, eq1_network):
        other = eq1_network.copy()
        other.nodes["H"] = other.nodes["H"][:1]
        # comparing only F and G still passes
        assert random_equivalence_check(
            eq1_network, other, outputs=["F", "G"], vectors=128
        )
