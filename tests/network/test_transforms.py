import pytest

from repro.network.boolean_network import BooleanNetwork
from repro.network.simulate import exhaustive_equivalence_check, random_equivalence_check
from repro.network.transforms import eliminate, node_value, substitute_node_into


@pytest.fixture
def layered():
    net = BooleanNetwork("layered")
    net.add_inputs(list("abcd"))
    net.add_node("x", "a + b")       # small node, 2 fanouts
    net.add_node("F", "xc")
    net.add_node("G", "xd")
    net.add_output("F")
    net.add_output("G")
    return net


class TestNodeValue:
    def test_value_formula(self, layered):
        # x: L=2 literals, 2 references -> value = 2*2 - (2+2) = 0
        assert node_value(layered, "x") == 0

    def test_high_value_for_shared_big_node(self):
        net = BooleanNetwork()
        net.add_inputs(list("abcde"))
        net.add_node("k", "a + b + c")
        for i, out in enumerate(["F", "G", "H"]):
            net.add_node(out, f"k{'de'[i % 2]}")
            net.add_output(out)
        # L=3, refs=3 -> 9 - 6 = 3
        assert node_value(net, "k") == 3

    def test_unreferenced_node_negative(self, layered):
        net = layered
        net.add_node("dead", "a + b + c")
        assert node_value(net, "dead") < 0


class TestSubstitute:
    def test_expands_product(self, layered):
        ref = layered.copy()
        assert substitute_node_into(layered, "F", "x")
        # F = (a+b)c = ac + bc
        assert layered.literal_count("F") == 4
        assert exhaustive_equivalence_check(ref, layered, outputs=["F"])

    def test_no_reference_returns_false(self, layered):
        layered.add_node("Z", "cd")
        assert not substitute_node_into(layered, "Z", "x")

    def test_complement_reference_refused(self):
        net = BooleanNetwork()
        net.add_inputs(list("ab"))
        net.add_node("x", "a + b")
        net.add_node("F", "x'a")
        net.add_output("F")
        assert not substitute_node_into(net, "F", "x")


class TestEliminate:
    def test_collapses_zero_value_node(self, layered):
        ref = layered.copy()
        removed = eliminate(layered, threshold=1)
        assert removed == 1
        assert "x" not in layered.nodes
        assert exhaustive_equivalence_check(ref, layered, outputs=["F", "G"])

    def test_keeps_valuable_nodes(self, layered):
        removed = eliminate(layered, threshold=0)
        # value(x) == 0, not < 0 -> kept
        assert removed == 0
        assert "x" in layered.nodes

    def test_protect_list(self, layered):
        removed = eliminate(layered, threshold=10, protect={"x"})
        assert removed == 0

    def test_outputs_never_collapsed(self, layered):
        eliminate(layered, threshold=1000)
        assert "F" in layered.nodes and "G" in layered.nodes

    def test_cascading_collapse(self):
        net = BooleanNetwork()
        net.add_inputs(list("ab"))
        net.add_node("x", "ab")
        net.add_node("y", "x")
        net.add_node("F", "y")
        net.add_output("F")
        ref = net.copy()
        removed = eliminate(net, threshold=1)
        assert removed == 2
        assert set(net.nodes) == {"F"}
        assert exhaustive_equivalence_check(ref, net, outputs=["F"])

    def test_complement_reader_keeps_node(self):
        net = BooleanNetwork()
        net.add_inputs(list("abc"))
        net.add_node("x", "ab")
        net.add_node("F", "xc")
        net.add_node("G", "x'c")
        net.add_output("F")
        net.add_output("G")
        eliminate(net, threshold=1000)
        assert "x" in net.nodes  # complement reference is inviolable
        # but F may have been expanded; function must hold either way
        ref = BooleanNetwork()
        ref.add_inputs(list("abc"))
        ref.add_node("x", "ab")
        ref.add_node("F", "xc")
        ref.add_node("G", "x'c")
        ref.add_output("F")
        ref.add_output("G")
        assert exhaustive_equivalence_check(ref, net, outputs=["F", "G"])

    def test_preserves_function_on_generated(self, small_circuit):
        net = small_circuit.copy()
        eliminate(net, threshold=2)
        assert random_equivalence_check(
            small_circuit, net, vectors=128, outputs=small_circuit.outputs
        )

    def test_eliminate_then_extract_roundtrip(self, small_circuit):
        """The synthesis-script pattern: extract, eliminate, re-extract."""
        from repro.rectangles.cover import kernel_extract

        net = small_circuit.copy()
        kernel_extract(net)
        eliminate(net, threshold=1)
        kernel_extract(net)
        assert random_equivalence_check(
            small_circuit, net, vectors=128, outputs=small_circuit.outputs
        )
