"""End-to-end distributed tracing: gateway + worker processes, real HTTP.

These are the cross-process guarantees the trace endpoint makes: every
completed request has one merged trace whose spans share a single
trace_id across the gateway and worker processes; a worker SIGKILL
mid-request preserves the original trace_id through the redispatch and
leaves a flight-recorder artifact; traces stay available through the
NDJSON watch flow and across a gateway restart.
"""

import asyncio
import glob
import os
import signal

from repro.obs.export import TRACE_SCHEMA
from repro.obs.flight import load_flight, render_flight
from repro.serve import Gateway, GatewayConfig
from repro.serve.bench import _probe_circuit_eqn
from repro.serve.httpio import http_json, http_json_lines


async def _started(**kw):
    kw.setdefault("port", 0)
    kw.setdefault("workers", 2)
    gw = Gateway(GatewayConfig(**kw))
    await gw.start()
    assert await gw.wait_ready(15), "workers never became ready"
    return gw


def _span_index(trace):
    return {sp["id"]: sp for sp in trace["spans"]}


async def _fetch_trace(gw, job_id):
    status, trace = await http_json(
        "GET", gw.url + f"/v1/jobs/{job_id}/trace"
    )
    assert status == 200, trace
    return trace


def test_completed_request_has_one_merged_cross_process_trace():
    async def main():
        gw = await _started()
        try:
            body = {"circuit": "example", "algorithm": "sequential"}
            status, doc = await http_json("POST", gw.url + "/v1/factor", body)
            assert status == 200 and doc["status"] == "done"
            assert doc["trace_id"]

            trace = await _fetch_trace(gw, doc["job_id"])
            assert trace["schema"] == TRACE_SCHEMA
            assert trace["trace_id"] == doc["trace_id"]
            assert trace["job_id"] == doc["job_id"]
            assert "gateway" in trace["procs"]
            assert any(p.startswith("worker:") for p in trace["procs"])

            spans = _span_index(trace)
            by_name = {sp["name"]: sp for sp in trace["spans"]}
            request = by_name["request"]
            dispatch = by_name["dispatch"]
            factor = by_name["worker-factor"]
            assert request.get("parent") is None
            assert dispatch["parent"] == request["id"]
            # the worker's root span nests under the gateway dispatch
            # span — across a process boundary
            assert factor["parent"] == dispatch["id"]
            assert factor["proc"].startswith("worker:")
            assert request["attrs"]["trace_id"] == doc["trace_id"]
            # engine internals rode along inside the worker batch
            assert any(
                sp["proc"].startswith("worker:") and sp["id"] != factor["id"]
                for sp in trace["spans"]
            )
            for sp in trace["spans"]:
                assert sp["t1"] >= sp["t0"] >= 0.0
                parent = sp.get("parent")
                if parent is not None:
                    assert parent in spans

            # chrome export of the same trace
            status, chrome = await http_json(
                "GET", gw.url + f"/v1/jobs/{doc['job_id']}/trace?format=chrome"
            )
            assert status == 200
            events = chrome["traceEvents"]
            assert any(e.get("ph") == "X" for e in events)
            pids = {e["pid"] for e in events if e.get("ph") == "X"}
            assert len(pids) >= 2  # gateway + at least one worker
        finally:
            await gw.stop()

    asyncio.run(main())


def test_inbound_trace_header_is_honored_end_to_end():
    async def main():
        gw = await _started(workers=1)
        try:
            body = {"circuit": "example", "algorithm": "sequential"}
            status, doc = await http_json(
                "POST", gw.url + "/v1/factor", body,
                headers={"X-Repro-Trace": "deadbeefdeadbeef:7"},
            )
            assert status == 200
            assert doc["trace_id"] == "deadbeefdeadbeef"
            trace = await _fetch_trace(gw, doc["job_id"])
            assert trace["trace_id"] == "deadbeefdeadbeef"
            request = next(
                sp for sp in trace["spans"] if sp["name"] == "request"
            )
            assert request["attrs"]["client_parent"] == 7
        finally:
            await gw.stop()

    asyncio.run(main())


def test_coalesced_follower_gets_join_span_with_both_trace_ids():
    async def main():
        gw = await _started()
        try:
            body = {"eqn": _probe_circuit_eqn(21), "algorithm": "sequential"}
            results = await asyncio.gather(*[
                http_json("POST", gw.url + "/v1/factor", dict(body),
                          timeout=60)
                for _ in range(3)
            ])
            assert [s for s, _ in results] == [200] * 3
            docs = [d for _, d in results]
            followers = [d for d in docs if d["coalesced"]]
            leaders = [d for d in docs if not d["coalesced"]]
            assert len(leaders) == 1 and len(followers) == 2
            leader = leaders[0]

            for doc in followers:
                assert doc["trace_id"] != leader["trace_id"]
                trace = await _fetch_trace(gw, doc["job_id"])
                assert trace["trace_id"] == doc["trace_id"]
                join = next(
                    sp for sp in trace["spans"]
                    if sp["name"] == "coalesce-join"
                )
                assert join["attrs"]["leader_trace_id"] == leader["trace_id"]
                assert join["attrs"]["follower_trace_id"] == doc["trace_id"]
                # the shared worker spans are rehomed under the join
                factor = next(
                    sp for sp in trace["spans"]
                    if sp["name"] == "worker-factor"
                )
                assert factor["parent"] == join["id"]
        finally:
            await gw.stop()

    asyncio.run(main())


def test_sigkill_mid_request_keeps_trace_id_and_dumps_flight(tmp_path):
    flight_dir = str(tmp_path / "flight")

    async def main():
        gw = await _started(flight_dir=flight_dir)
        try:
            body = {"eqn": _probe_circuit_eqn(23), "algorithm": "sequential"}
            task = asyncio.ensure_future(
                http_json("POST", gw.url + "/v1/factor", body, timeout=60)
            )
            busy = []
            for _ in range(200):  # wait until the job is on a worker
                await asyncio.sleep(0.02)
                busy = [h for h in gw._handles if gw._outstanding[h.worker_id]]
                if busy:
                    break
            assert busy, "request never reached a worker"
            victim = busy[0].worker_id
            os.kill(busy[0].process.pid, signal.SIGKILL)

            status, doc = await task
            assert status == 200 and doc["status"] == "done"

            # the redispatched request kept its original trace_id …
            trace = await _fetch_trace(gw, doc["job_id"])
            assert trace["trace_id"] == doc["trace_id"]
            redispatch = [
                sp for sp in trace["spans"] if sp["name"] == "redispatch"
            ]
            assert redispatch, "trace does not show the respawn redispatch"
            assert any(sp["name"] == "worker-factor"
                       for sp in trace["spans"])

            # … and the gateway dumped its flight ring for the crash
            dumps = glob.glob(
                os.path.join(flight_dir, f"*worker-{victim}-crash*.flight.jsonl")
            )
            assert dumps, os.listdir(flight_dir)
            flight = load_flight(dumps[0])
            assert flight["header"]["proc"] == "gateway"
            names = [e["name"] for e in flight["events"]]
            assert f"worker-{victim}-dead" in names
            assert any(e["kind"] == "dispatch" for e in flight["events"])
            assert "worker" in render_flight(flight)
        finally:
            await gw.stop()

    asyncio.run(main())


def test_watch_stream_and_trace_survive_gateway_restart(tmp_path):
    async def main():
        body = {"circuit": "example", "algorithm": "lshaped", "procs": 2}
        gw = await _started(cache_dir=str(tmp_path))
        try:
            # async submit + NDJSON watch: the stream ends in a done
            # document that already carries the trace_id
            req = dict(body, wait=False)
            status, doc = await http_json("POST", gw.url + "/v1/factor", req)
            assert status in (200, 202)
            job_id = doc["job_id"]
            status, lines = await http_json_lines(
                "GET", gw.url + f"/v1/jobs/{job_id}?watch=1"
            )
            assert status == 200 and lines[-1]["status"] == "done"
            assert lines[-1]["trace_id"]
            trace = await _fetch_trace(gw, job_id)
            assert trace["trace_id"] == lines[-1]["trace_id"]
        finally:
            await gw.stop()

        # a fresh gateway over the same cache: the disk-served request
        # still produces a complete merged trace of its own
        gw = await _started(cache_dir=str(tmp_path))
        try:
            status, doc = await http_json("POST", gw.url + "/v1/factor", body)
            assert status == 200 and doc["cache"] == "disk"
            trace = await _fetch_trace(gw, doc["job_id"])
            assert trace["trace_id"] == doc["trace_id"]
            names = {sp["name"] for sp in trace["spans"]}
            assert {"request", "dispatch", "worker-factor"} <= names
        finally:
            await gw.stop()

    asyncio.run(main())


def test_tracing_can_be_disabled():
    async def main():
        gw = await _started(workers=1, trace_requests=False)
        try:
            body = {"circuit": "example", "algorithm": "sequential"}
            status, doc = await http_json("POST", gw.url + "/v1/factor", body)
            assert status == 200
            assert "trace_id" not in doc
            status, err = await http_json(
                "GET", gw.url + f"/v1/jobs/{doc['job_id']}/trace"
            )
            assert status == 404
            assert "trace" in err["error"]
        finally:
            await gw.stop()

    asyncio.run(main())
