"""Exporters: Chrome-trace JSON round-trip and JSONL shape."""

import json

import pytest

from repro.circuits import load_circuit
from repro.obs.export import (
    chrome_trace_json,
    to_chrome_trace,
    to_jsonl,
)
from repro.obs.profile import profile_run
from repro.obs.tracer import Tracer, use_tracer


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    with use_tracer(None):
        yield


def _profiled():
    return profile_run(load_circuit("example"), algorithm="lshaped", nprocs=3)


class TestChromeTrace:
    def test_round_trips_through_json(self):
        prof = _profiled()
        doc = json.loads(prof.chrome_trace())
        assert doc["otherData"]["clock"] == "virtual"
        events = doc["traceEvents"]
        assert events, "no events exported"
        for ev in events:
            assert ev["ph"] in ("X", "M")
            if ev["ph"] == "X":
                assert ev["dur"] >= 0
                assert isinstance(ev["ts"], (int, float))

    def test_timestamps_monotonic_per_track(self):
        """Within one virtual track, complete events never overlap
        backwards: sorted by ts, each event starts at or after the
        previous non-enclosing event's start."""
        prof = _profiled()
        doc = json.loads(prof.chrome_trace())
        by_tid = {}
        for ev in doc["traceEvents"]:
            if ev["ph"] == "X":
                by_tid.setdefault(ev["tid"], []).append(ev)
        assert len(by_tid) >= 3  # one lane per processor
        for tid, events in by_tid.items():
            ts = [ev["ts"] for ev in events]
            assert ts == sorted(ts) or sorted(ts) == ts, tid
            last_end = 0.0
            for ev in sorted(events, key=lambda e: (e["ts"], -e["dur"])):
                # events either nest inside the previous one or start
                # after it — virtual lanes have no time travel
                assert ev["ts"] + ev["dur"] <= last_end + 1e-6 \
                    or ev["ts"] >= last_end - 1e-6 \
                    or ev["ts"] + ev["dur"] >= last_end
                last_end = max(last_end, ev["ts"] + ev["dur"])

    def test_host_clock_export(self):
        tr = Tracer()
        with tr.span("a", track="x"):
            pass
        doc = to_chrome_trace(tr, clock="host")
        xs = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert len(xs) == 1
        assert xs[0]["ts"] >= 0  # rebased to the earliest span

    def test_metadata_names_tracks(self):
        prof = _profiled()
        doc = json.loads(prof.chrome_trace())
        names = {ev["args"]["name"] for ev in doc["traceEvents"]
                 if ev["ph"] == "M"}
        assert {"0", "1", "2"} <= names

    def test_counters_and_error_flag_land_in_args(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            with tr.span("bad", track="t") as sp:
                sp.add_counter("visits", 7)
                sp.set_virtual_end(1.0)
                raise ValueError()
        doc = to_chrome_trace(tr, clock="host")
        [ev] = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert ev["args"]["visits"] == 7.0
        assert ev["args"]["error"] is True

    def test_virtual_export_drops_host_only_spans(self):
        tr = Tracer()
        with tr.span("host-only", track="t"):
            pass
        with tr.span("both", track="t", virtual_start=0.0) as sp:
            sp.set_virtual_end(2.0)
        doc = to_chrome_trace(tr, clock="virtual")
        xs = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert xs == ["both"]


class TestJsonl:
    def test_one_json_object_per_line(self):
        prof = _profiled()
        lines = prof.jsonl().strip().splitlines()
        assert len(lines) == len(prof.tracer.finished())
        for line in lines:
            record = json.loads(line)
            assert "name" in record and "track" in record
            assert record["t1"] >= record["t0"]

    def test_jsonl_preserves_both_clocks(self):
        tr = Tracer()
        with tr.span("w", track=0, virtual_start=3.0) as sp:
            sp.set_virtual_end(9.0)
        [record] = [json.loads(l) for l in to_jsonl(tr).strip().splitlines()]
        assert record["v0"] == 3.0 and record["v1"] == 9.0
        assert record["t1"] >= record["t0"]


def test_chrome_trace_json_accepts_span_iterables():
    tr = Tracer()
    with tr.span("a", track="t", virtual_start=0.0) as sp:
        sp.set_virtual_end(1.0)
    text = chrome_trace_json(tr.finished())
    assert json.loads(text)["traceEvents"]
