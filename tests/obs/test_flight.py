"""Flight recorder unit tests: the ring, the dump, and the reader."""

import json

import pytest

from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    auto_dump,
    load_flight,
    render_flight,
    set_flight_dir,
    set_flight_recorder,
)


@pytest.fixture(autouse=True)
def _clean_globals():
    """Every test gets (and leaves behind) pristine module state."""
    set_flight_recorder(None)
    set_flight_dir(None)
    yield
    set_flight_recorder(None)
    set_flight_dir(None)


def test_ring_drops_oldest_when_full():
    rec = FlightRecorder(capacity=4)
    for i in range(6):
        rec.record("probe", f"event-{i}", i=i)
    assert len(rec) == 4
    assert rec.dropped == 2
    assert [e["name"] for e in rec.snapshot()] == [
        "event-2", "event-3", "event-4", "event-5",
    ]
    rec.clear()
    assert len(rec) == 0 and rec.dropped == 0


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


def test_disabled_via_env_records_nothing(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_FLIGHT", "0")
    rec = FlightRecorder()
    rec.record("probe", "ignored")
    assert len(rec) == 0
    set_flight_dir(str(tmp_path))
    assert auto_dump("whatever", rec) is None


def test_dump_load_render_round_trip(tmp_path):
    rec = FlightRecorder(capacity=8, proc="worker:3")
    rec.record("request", "factor", job="j-1")
    rec.record("crash", "worker-3-dead", pid=1234)
    path = rec.dump(str(tmp_path / "x.flight.jsonl"), reason="unit test")

    doc = load_flight(path)
    assert doc["header"]["schema"] == FLIGHT_SCHEMA
    assert doc["header"]["proc"] == "worker:3"
    assert doc["header"]["reason"] == "unit test"
    assert doc["header"]["events"] == 2
    assert [e["name"] for e in doc["events"]] == ["factor", "worker-3-dead"]
    assert doc["events"][0]["job"] == "j-1"
    assert all("t" in e and "wall" in e for e in doc["events"])

    text = render_flight(doc)
    assert "worker:3" in text
    assert "factor" in text and "worker-3-dead" in text
    assert "job=j-1" in text


def test_auto_dump_writes_sanitized_artifact(tmp_path):
    rec = FlightRecorder(proc="gateway")
    rec.record("dispatch", "factor")
    set_flight_dir(str(tmp_path))
    path = auto_dump("worker 0/crash!", rec)
    assert path is not None
    name = path.rsplit("/", 1)[-1]
    assert name.startswith("gateway-")
    assert "worker-0-crash-" in name
    assert name.endswith(".flight.jsonl")
    assert load_flight(path)["header"]["reason"] == "worker 0/crash!"


def test_auto_dump_without_directory_is_a_noop(tmp_path):
    rec = FlightRecorder()
    rec.record("probe", "event")
    assert auto_dump("reason", rec) is None  # no dir configured
    assert list(tmp_path.iterdir()) == []


def test_auto_dump_uses_global_singleton(tmp_path):
    from repro.obs.flight import flight_recorder

    set_flight_dir(str(tmp_path))
    flight_recorder(proc="main").record("probe", "solo")
    path = auto_dump("global")
    assert path is not None
    doc = load_flight(path)
    assert [e["name"] for e in doc["events"]] == ["solo"]


def test_load_flight_rejects_empty_and_foreign_files(tmp_path):
    empty = tmp_path / "empty.flight.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError, match="empty"):
        load_flight(str(empty))

    foreign = tmp_path / "foreign.flight.jsonl"
    foreign.write_text(json.dumps({"schema": "not.flight/9"}) + "\n")
    with pytest.raises(ValueError, match="schema"):
        load_flight(str(foreign))
