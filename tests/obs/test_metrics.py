"""Bounded-histogram regression tests and the shared snapshot schema."""

import json
import sys

from repro.obs import SNAPSHOT_SCHEMA, snapshot
from repro.obs.metrics import (
    DEFAULT_HISTOGRAM_CAP,
    Histogram,
    MetricsRegistry,
)


class TestBoundedHistogram:
    def test_exact_until_cap(self):
        h = Histogram("t", cap=100)
        for i in range(100):
            h.observe(i)
        assert h.sample_size == 100
        assert h.count == 100
        assert h.percentile(0) == 0
        assert h.percentile(100) == 99

    def test_one_million_values_fixed_memory(self):
        """The old unbounded histogram kept a 1M-entry list here; the
        reservoir keeps the buffer at the cap while count/total/min/max
        (and hence mean) stay exact."""
        cap = 512
        h = Histogram("load", cap=cap)
        n = 1_000_000
        for i in range(n):
            h.observe(float(i % 1000))
        assert h.sample_size == cap                      # memory bound
        assert sys.getsizeof(h._samples) < 16 * cap + 256
        assert h.count == n                              # exact scalars
        assert h.total == sum(float(i % 1000) for i in range(1000)) * (n // 1000)
        summ = h.summary()
        assert summ["min"] == 0.0 and summ["max"] == 999.0
        assert summ["mean"] == h.total / n
        # The reservoir is a uniform sample of a uniform stream: its
        # median estimate cannot be wildly off.
        assert 300 <= summ["p50"] <= 700

    def test_reservoir_is_deterministic_per_name(self):
        def run(name):
            h = Histogram(name, cap=16)
            for i in range(10_000):
                h.observe(float(i))
            return h.summary()

        assert run("a") == run("a")
        # Different names seed different reservoirs (overwhelmingly).
        assert run("a")["p50"] != run("b")["p50"]

    def test_cap_validation(self):
        import pytest

        with pytest.raises(ValueError):
            Histogram("bad", cap=0)

    def test_registry_default_cap(self):
        reg = MetricsRegistry()
        assert reg.histogram("x").cap == DEFAULT_HISTOGRAM_CAP
        assert reg.histogram("y", cap=8).cap == 8
        # get-or-create: the first cap wins
        assert reg.histogram("y").cap == 8


class TestServiceAlias:
    def test_old_import_path_still_works(self):
        from repro.obs import metrics as new
        from repro.service import metrics as old

        assert old.MetricsRegistry is new.MetricsRegistry
        assert old.Histogram is new.Histogram
        assert old.Counter is new.Counter
        assert old.Timer is new.Timer


class TestSnapshot:
    def test_unified_schema(self):
        from repro.obs.tracer import Tracer

        reg = MetricsRegistry()
        reg.inc("jobs", 3)
        tr = Tracer()
        with tr.span("phase-x", track=0, virtual_start=0.0) as sp:
            sp.set_virtual_end(4.0)
        snap = snapshot(registry=reg, tracer=tr, cache={"hits": 1})
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["metrics"]["counters"]["jobs"] == 3
        assert snap["cache"] == {"hits": 1}
        assert snap["trace"]["phases"]["phase-x"]["virtual"] == 4.0
        json.dumps(snap)  # must be serializable as-is

    def test_sections_are_optional(self):
        from repro.obs.tracer import use_tracer

        with use_tracer(None):
            snap = snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert "metrics" not in snap and "trace" not in snap
