"""The profiler's core invariant, on every factorization path.

Per-track virtual-time totals reconstructed from the span trace must
agree with the authoritative accounting they claim to attribute: the
simulated machine's final per-processor clocks (== the PhaseReport sum
plus stalls) on the three parallel paths, and the cost-model compute
time of the metered run on the two sequential paths.  The threaded path
has no virtual clock; it must still produce one host-clock lane per
worker thread.
"""

import pytest

from repro.circuits import load_circuit
from repro.machine.costmodel import CostMeter, DEFAULT_COST_MODEL
from repro.obs.profile import PROFILE_ALGORITHMS, profile_run
from repro.obs.tracer import Tracer, use_tracer

TOL = 1e-6
NPROCS = 3


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    with use_tracer(None):
        yield


@pytest.fixture()
def network():
    return load_circuit("example")


@pytest.mark.parametrize("searcher", ["exhaustive", "pingpong"])
def test_sequential_totals_match_cost_model(network, searcher):
    from repro.rectangles.cover import kernel_extract

    tracer = Tracer()
    meter = CostMeter()
    with use_tracer(tracer):
        kernel_extract(network.copy(), meter=meter, searcher=searcher)
    expected = DEFAULT_COST_MODEL.compute_time(meter.counts)
    totals = tracer.track_virtual_totals()
    assert totals, "sequential run emitted no spans"
    assert max(totals.values()) == pytest.approx(expected, abs=TOL)
    # Nested spans never run past the clock they report against.
    for sp in tracer.finished():
        assert sp.v1 is None or sp.v1 <= expected + TOL


@pytest.mark.parametrize("algorithm", ["replicated", "independent", "lshaped"])
def test_parallel_totals_match_machine_clocks(network, algorithm):
    prof = profile_run(network, algorithm=algorithm, nprocs=NPROCS)
    assert len(prof.proc_clocks) == NPROCS
    totals = prof.tracer.track_virtual_totals()
    for pid, clock in enumerate(prof.proc_clocks):
        assert totals[pid] == pytest.approx(clock, abs=TOL), (
            f"{algorithm} pid {pid}"
        )
    assert max(prof.proc_clocks) == pytest.approx(prof.parallel_time, abs=TOL)
    # profile_run(check=True) already ran check_clocks(); make the
    # negative direction explicit too: tampering must be caught.
    prof.proc_clocks[0] += 1.0
    from repro.obs.profile import ProfileMismatch

    with pytest.raises(ProfileMismatch):
        prof.check_clocks()


def test_parallel_phase_reports_are_traced(network):
    """Every machine PhaseReport shows up as spans in the trace."""
    from repro.machine.simulator import SimulatedMachine
    from repro.parallel.replicated import replicated_kernel_extract

    tracer = Tracer()
    run = replicated_kernel_extract(network, NPROCS, tracer=tracer)
    span_names = {sp.name for sp in tracer.finished()}
    assert "kc-build" in span_names
    assert "extract-commit" in span_names
    # Tracer passed by kwarg, not installed globally: the ambient
    # tracer stays off while per-run spans still flow.
    assert run.proc_clocks is not None


def test_threaded_path_emits_host_lanes(network):
    from repro.parallel.lshaped_threaded import lshaped_kernel_extract_threaded

    tracer = Tracer()
    with use_tracer(tracer):
        result = lshaped_kernel_extract_threaded(network, 2, max_cycles=2)
    lanes = {sp.track for sp in tracer.finished()
             if sp.name == "worker-cycle"}
    assert lanes == {"thread-0", "thread-1"}
    for sp in tracer.finished():
        if sp.name == "worker-cycle":
            assert sp.host_duration >= 0.0
    assert result.literal_count() <= network.literal_count()


def test_profile_run_covers_all_algorithms(network):
    for algorithm in PROFILE_ALGORITHMS:
        prof = profile_run(network, algorithm=algorithm, nprocs=2)
        assert prof.final_lc <= prof.initial_lc
        rows = prof.phase_rows()
        assert rows and abs(sum(r["share"] for r in rows) - 100.0) < 1e-6
        rendered = prof.render()
        assert "Phase breakdown" in rendered
        payload = prof.to_dict()
        assert payload["schema"] == "repro.obs.profile/1"


def test_search_counters_reach_the_trace(network):
    prof = profile_run(network, algorithm="sequential", searcher="pingpong")
    counters = prof.tracer.counter_totals()
    assert counters.get("pingpong_round_visit", 0) > 0
    assert counters.get("ascent_seed", 0) > 0
    prof = profile_run(network, algorithm="sequential", searcher="exhaustive")
    counters = prof.tracer.counter_totals()
    assert counters.get("search_node_visit", 0) > 0
