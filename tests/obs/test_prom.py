"""Prometheus exposition tests: renderer output and the validator."""

from repro.obs.prom import render_prometheus, validate_prometheus_text

#: A representative gateway ``/metrics`` document (the JSON shape
#: ``Gateway.metrics_document`` produces).
DOC = {
    "gateway": {
        "counters": {
            "requests_total": 42,
            "results_ok": 40,
            "results_failed": 2,
            "requests_coalesced": 5,
        },
        "histograms": {
            "request_seconds": {
                "count": 40, "total": 12.0, "min": 0.05, "max": 1.5,
                "mean": 0.3, "p50": 0.2, "p95": 0.9,
            },
            "empty_seconds": {"count": 0},
        },
    },
    "latency": {"p50": 0.2, "p95": 0.9, "p99": 1.2},
    "cache": {"size": 3, "hits": 7, "misses": 2, "enabled": True},
    "disk_cache": {"entries": 5, "hits": 1},
    "workers": {
        "0": {"alive": True, "generation": 1, "crashes": 0},
        "1": {"alive": False, "generation": 3, "crashes": 2},
    },
    "rect_search": {"rect_search_nodes": 100, "rect_memo_hits": 4},
    "portfolio": {
        "portfolio_races": 3,
        "portfolio_lane_wins": {"pingpong": 2, "exhaustive": 1},
    },
    "slo": {
        "paths": {
            "default/sequential": {
                "60s": {"error_burn": 0.0, "latency_burn": 0.5},
                "600s": {"error_burn": 0.1, "latency_burn": 0.2},
            },
        },
    },
    "cluster": {"counters": {"jobs_total": 10, "cache_hits": 4}},
}


def test_render_passes_the_validator():
    text = render_prometheus(DOC)
    assert validate_prometheus_text(text) == []


def test_render_families_and_naming():
    text = render_prometheus(DOC)
    assert "# TYPE repro_requests_total counter" in text
    assert "repro_requests_total 42" in text
    assert "# TYPE repro_request_seconds summary" in text
    assert 'repro_request_seconds{quantile="0.99"} 1.2' in text
    assert "repro_request_seconds_sum 12" in text
    assert "repro_request_seconds_count 40" in text
    assert "repro_empty_seconds" not in text  # zero-count stays silent
    assert 'repro_worker_alive{worker="1"} 0' in text
    assert 'repro_worker_crashes_detected_total{worker="1"} 2' in text
    assert 'repro_portfolio_lane_wins_total{lane="pingpong"} 2' in text
    assert ('repro_slo_latency_burn{algorithm="sequential",'
            'tenant="default",window="60s"} 0.5') in text
    assert "repro_cluster_jobs_total 10" in text
    # booleans are not numeric gauges
    assert "repro_gateway_cache_enabled" not in text


def test_label_values_are_escaped():
    doc = {
        "slo": {
            "paths": {
                'we"ird\\ten\nant/seq': {
                    "60s": {"error_burn": 1.0, "latency_burn": 0.0},
                },
            },
        },
    }
    text = render_prometheus(doc)
    assert validate_prometheus_text(text) == []
    assert '\\"' in text and "\\\\" in text and "\\n" in text


def test_render_empty_doc_is_still_valid_enough():
    text = render_prometheus({})
    # Nothing to expose: validator flags the absence, nothing else.
    assert validate_prometheus_text(text) == ["no metric families found"]


def test_validator_catches_sample_before_type():
    text = "repro_x_total 1\n# TYPE repro_x_total counter\n"
    problems = validate_prometheus_text(text)
    assert any("precedes its TYPE" in p for p in problems)


def test_validator_catches_counter_without_total_suffix():
    text = "# TYPE repro_x counter\nrepro_x 1\n"
    problems = validate_prometheus_text(text)
    assert any("_total" in p for p in problems)


def test_validator_catches_bad_values_and_duplicates():
    text = (
        "# TYPE repro_g gauge\n"
        "repro_g potato\n"
        'repro_g{a="1"} 2\n'
        'repro_g{a="1"} 3\n'
        "repro_g NaN\n"
    )
    problems = validate_prometheus_text(text)
    assert any("bad value 'potato'" in p for p in problems)
    assert any("duplicate sample" in p for p in problems)
    # NaN duplicates the bare-name 'potato' sample key but is a legal value
    assert not any("bad value 'NaN'" in p for p in problems)


def test_validator_catches_malformed_labels():
    text = '# TYPE repro_g gauge\nrepro_g{a="unterminated} 1\n'
    problems = validate_prometheus_text(text)
    assert any("malformed labels" in p for p in problems)


def test_validator_accepts_summary_suffixes():
    text = (
        "# TYPE repro_s summary\n"
        'repro_s{quantile="0.5"} 0.1\n'
        "repro_s_sum 1.5\n"
        "repro_s_count 10\n"
    )
    assert validate_prometheus_text(text) == []
