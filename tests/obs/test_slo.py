"""SLO tracker unit tests: burn rates, the multi-window rule, eviction.

Every test drives an injected clock, so windows are exact and nothing
sleeps.
"""

from repro.obs.slo import MIN_EVENTS, SLOConfig, SLOTracker


class Clock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


def _tracker(clock, **kw):
    kw.setdefault("now", clock)
    return SLOTracker(**kw)


def test_below_min_events_no_judgment():
    clock = Clock()
    slo = _tracker(clock)
    for _ in range(MIN_EVENTS - 1):
        slo.observe("t", "sequential", 10.0, ok=False)  # terrible, but few
    assert slo.burn_rates("t", "sequential") == {}
    assert slo.problems() == []
    assert slo.status() == "ok"


def test_clean_traffic_burns_nothing():
    clock = Clock()
    slo = _tracker(clock)
    for _ in range(50):
        slo.observe("t", "lshaped", 0.1, ok=True)
    burns = slo.burn_rates("t", "lshaped")
    assert set(burns) == {"60s", "600s"}
    for window in burns.values():
        assert window["events"] == 50
        assert window["error_burn"] == 0.0
        assert window["latency_burn"] == 0.0
    assert slo.status() == "ok"


def test_error_burn_is_bad_fraction_over_budget():
    clock = Clock()
    slo = _tracker(clock)  # availability 0.999 -> budget 0.001
    for i in range(100):
        slo.observe("t", "seq", 0.1, ok=(i % 10 != 0))  # 10% failures
    burns = slo.burn_rates("t", "seq")["60s"]
    assert abs(burns["error_rate"] - 0.10) < 1e-12
    assert abs(burns["error_burn"] - 100.0) < 1e-9


def test_slow_but_successful_requests_burn_latency_budget():
    clock = Clock()
    config = SLOConfig(latency_target_s=1.0, latency_objective=0.9)
    slo = _tracker(clock, config=config)  # latency budget 0.1
    for i in range(20):
        slo.observe("t", "seq", 5.0 if i < 4 else 0.1, ok=True)
    burns = slo.burn_rates("t", "seq")["60s"]
    assert abs(burns["slow_rate"] - 0.2) < 1e-12
    assert abs(burns["latency_burn"] - 2.0) < 1e-9
    assert burns["error_burn"] == 0.0
    # A failed slow request counts against availability, not latency.
    slo2 = _tracker(clock, config=config)
    for _ in range(20):
        slo2.observe("t", "seq", 5.0, ok=False)
    assert slo2.burn_rates("t", "seq")["60s"]["latency_burn"] == 0.0


def test_paging_requires_both_windows_hot():
    # Budget 0.05 so an all-bad short window burns 20x (> 14.4).
    config = SLOConfig(availability_target=0.95)

    clock = Clock(100.0)
    slo = _tracker(clock, config=config)
    for _ in range(40):
        slo.observe("t", "seq", 0.1, ok=True)   # old clean traffic
    clock.t = 640.0
    for _ in range(10):
        slo.observe("t", "seq", 0.1, ok=False)  # current disaster
    clock.t = 650.0
    # Short window [590, 650]: 10/10 bad -> burn 20 >= 14.4.
    # Long window [50, 650]: 10/50 bad -> burn 4 < 6 -> no page yet.
    assert slo.burn_rates("t", "seq")["60s"]["error_burn"] >= 14.4
    assert slo.problems() == []

    slo2 = _tracker(clock, config=config)
    clock.t = 100.0
    for _ in range(40):
        slo2.observe("t", "seq", 0.1, ok=False)  # long window is bad too
    clock.t = 640.0
    for _ in range(10):
        slo2.observe("t", "seq", 0.1, ok=False)
    clock.t = 650.0
    problems = slo2.problems()
    assert len(problems) == 1
    assert "t/seq" in problems[0] and "error burn" in problems[0]
    assert slo2.status() == "degraded"


def test_events_age_out_of_the_long_window():
    clock = Clock()
    slo = _tracker(clock)
    for _ in range(30):
        slo.observe("t", "seq", 0.1, ok=False)
    clock.t = 700.0  # everything is past the 600s horizon
    assert slo.burn_rates("t", "seq") == {}
    assert slo.problems() == []


def test_lru_eviction_bounds_tracked_paths():
    clock = Clock()
    slo = _tracker(clock, max_keys=2)
    for tenant in ("a", "b", "c"):
        for _ in range(MIN_EVENTS):
            slo.observe(tenant, "seq", 0.1, ok=True)
    snap = slo.snapshot()
    assert snap["tracked_paths"] == 2
    assert set(snap["paths"]) == {"b/seq", "c/seq"}


def test_snapshot_shape_is_json_ready():
    import json

    clock = Clock()
    slo = _tracker(clock)
    for _ in range(MIN_EVENTS):
        slo.observe("default", "lshaped", 0.2, ok=True)
    snap = slo.snapshot()
    assert snap["windows_s"] == [60.0, 600.0]
    assert snap["objectives"]["availability_target"] == 0.999
    assert "default/lshaped" in snap["paths"]
    json.dumps(snap)  # must serialize as-is
