"""Snapshot schema v2 tests: bounded samples, merging, compat loading."""

import pytest

from repro import obs
from repro.obs import COMPAT_SCHEMAS, SNAPSHOT_SCHEMA, load_snapshot
from repro.obs.metrics import (
    SNAPSHOT_SAMPLE_CAP,
    MetricsRegistry,
    merge_snapshots,
)


def test_snapshot_histograms_carry_bounded_samples():
    reg = MetricsRegistry()
    h = reg.histogram("job_seconds")
    for i in range(10_000):
        h.observe(i / 1000.0)
    snap = reg.snapshot()
    entry = snap["histograms"]["job_seconds"]
    samples = entry["samples"]
    assert len(samples) <= SNAPSHOT_SAMPLE_CAP
    assert samples == sorted(samples)
    # the buffer is a bounded reservoir: the subset spans it, while
    # min/max are tracked exactly over every observation
    assert entry["min"] <= samples[0] <= samples[-1] <= entry["max"]


def test_small_histograms_ship_every_sample():
    reg = MetricsRegistry()
    h = reg.histogram("x")
    for v in (3.0, 1.0, 2.0):
        h.observe(v)
    assert reg.snapshot()["histograms"]["x"]["samples"] == [1.0, 2.0, 3.0]


def test_merge_counters_sum_and_extrema_are_exact():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.inc("jobs", 3)
    b.inc("jobs", 4)
    b.inc("only_b")
    for v in (0.1, 0.2, 0.3):
        a.histogram("lat").observe(v)
    for v in (1.0, 2.0):
        b.histogram("lat").observe(v)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"] == {"jobs": 7, "only_b": 1}
    lat = merged["histograms"]["lat"]
    assert lat["count"] == 5
    assert lat["min"] == 0.1 and lat["max"] == 2.0
    assert abs(lat["total"] - 3.6) < 1e-12
    assert abs(lat["mean"] - 0.72) < 1e-12


def test_merged_percentiles_pool_across_processes():
    # One process saw only fast requests, the other only slow ones; a
    # naive average of per-process p50s (0.1, 10.0) would say ~5 while
    # the pooled median of the combined population is far lower when
    # the fast process carried most of the traffic.
    fast = MetricsRegistry()
    slow = MetricsRegistry()
    for _ in range(90):
        fast.histogram("lat").observe(0.1)
    for _ in range(10):
        slow.histogram("lat").observe(10.0)
    merged = merge_snapshots([fast.snapshot(), slow.snapshot()])
    assert merged["histograms"]["lat"]["p50"] == 0.1
    assert merged["histograms"]["lat"]["p99"] == 10.0


def test_merge_skips_empty_and_handles_legacy_entries():
    reg = MetricsRegistry()
    for v in (0.2, 0.4, 0.6):
        reg.histogram("lat").observe(v)
    legacy = {
        "counters": {"jobs": 1},
        # a v1 entry: summary only, no samples
        "histograms": {"lat": {"count": 100, "total": 50.0, "min": 0.1,
                               "max": 3.0, "p50": 0.5, "p95": 2.0}},
    }
    merged = merge_snapshots([None, {}, reg.snapshot(), legacy])
    lat = merged["histograms"]["lat"]
    assert lat["count"] == 103
    assert lat["max"] == 3.0
    assert lat["p50"] is not None  # legacy sketch still contributes


def test_load_snapshot_accepts_both_generations():
    assert SNAPSHOT_SCHEMA == "repro.obs/2"
    assert set(COMPAT_SCHEMAS) == {"repro.obs/1", "repro.obs/2"}

    reg = MetricsRegistry()
    reg.histogram("x").observe(1.0)
    v2 = obs.snapshot(registry=reg)
    out = load_snapshot(v2)
    assert out["schema"] == SNAPSHOT_SCHEMA
    assert out["metrics"]["histograms"]["x"]["samples"] == [1.0]

    v1 = {
        "schema": "repro.obs/1",
        "metrics": {
            "counters": {"jobs": 2},
            "histograms": {"x": {"count": 2, "total": 3.0}},
        },
    }
    out = load_snapshot(v1)
    assert out["schema"] == SNAPSHOT_SCHEMA
    assert out["metrics"]["histograms"]["x"]["samples"] == []
    # the input document is not mutated
    assert "samples" not in v1["metrics"]["histograms"]["x"]


def test_load_snapshot_rejects_unknown_schema():
    with pytest.raises(ValueError, match="repro.obs/3"):
        load_snapshot({"schema": "repro.obs/3"})
