"""Tracer core: nesting, dual clocks, disabled mode, thread safety."""

import threading

import pytest

from repro.obs.tracer import (
    NULL_SPAN,
    Tracer,
    active_tracer,
    add_counters,
    context,
    enabled,
    set_tracer,
    span,
    use_tracer,
)


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    """Each test starts with tracing force-disabled (env ignored)."""
    with use_tracer(None):
        yield


class TestSpanBasics:
    def test_span_records_name_cat_track(self):
        tr = Tracer()
        with tr.span("kc-build", cat="phase", track=3) as sp:
            sp.set_attr("circuit", "dalu")
        [done] = tr.finished()
        assert done.name == "kc-build"
        assert done.cat == "phase"
        assert done.track == 3
        assert done.attrs["circuit"] == "dalu"
        assert done.t1 >= done.t0

    def test_virtual_clock_coordinates(self):
        tr = Tracer()
        with tr.span("work", virtual_start=10.0) as sp:
            sp.set_virtual_end(25.5)
        [done] = tr.finished()
        assert done.v0 == 10.0
        assert done.v1 == 25.5
        assert done.virtual_duration == 15.5

    def test_counters_accumulate(self):
        tr = Tracer()
        with tr.span("search") as sp:
            sp.add_counter("visits", 3)
            sp.add_counters(visits=2, prunes=1)
        [done] = tr.finished()
        assert done.counters == {"visits": 5.0, "prunes": 1.0}

    def test_nesting_parent_child(self):
        tr = Tracer()
        with tr.span("outer") as outer:
            with tr.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.track == outer.track
        names = {sp.name: sp for sp in tr.finished()}
        assert names["inner"].parent_id == names["outer"].span_id


class TestExceptionUnwinding:
    def test_spans_nest_under_exceptions(self):
        """An exception closes every open span, marks them errored."""
        tr = Tracer()
        with pytest.raises(RuntimeError):
            with tr.span("outer"):
                with tr.span("middle"):
                    with tr.span("inner"):
                        raise RuntimeError("boom")
        done = {sp.name: sp for sp in tr.finished()}
        assert set(done) == {"outer", "middle", "inner"}
        assert all(sp.error for sp in done.values())
        # The stack fully unwound: a fresh span has no leaked parent.
        with tr.span("after") as sp:
            assert sp.parent_id is None

    def test_abandoned_children_are_closed_by_parent_exit(self):
        """A child left open (generator abandoned mid-flight) must not
        corrupt the stack: the parent's exit pops and closes it."""
        tr = Tracer()
        with tr.span("parent"):
            tr.span("orphan")  # entered lazily, never __exit__-ed
        assert {sp.name for sp in tr.finished()} >= {"parent"}
        with tr.span("next") as sp:
            assert sp.parent_id is None


class TestDisabledMode:
    def test_disabled_emits_nothing_and_allocates_no_spans(self):
        assert active_tracer() is None
        assert not enabled()
        sps = [span(f"s{i}", cat="x") for i in range(16)]
        # Exactly one shared singleton — zero per-call allocation.
        assert all(sp is NULL_SPAN for sp in sps)
        for sp in sps:
            with sp:
                sp.add_counter("n", 1)
                sp.set_virtual_end(5.0)
        add_counters(loose=1)
        with context(track="t", job="j"):
            pass

    def test_use_tracer_scopes_install(self):
        tr = Tracer()
        with use_tracer(tr):
            assert active_tracer() is tr
            with span("visible"):
                pass
        assert active_tracer() is None
        assert [sp.name for sp in tr.finished()] == ["visible"]

    def test_set_tracer_round_trip(self):
        tr = Tracer()
        set_tracer(tr)
        try:
            assert active_tracer() is tr
        finally:
            set_tracer(None)
        # set_tracer(None) re-arms the env check but, under the fixture's
        # use_tracer(None) scope... the scope was replaced; re-disable.
        set_tracer(None)


class TestContext:
    def test_context_attrs_and_track_propagate(self):
        tr = Tracer()
        with use_tracer(tr):
            with context(track="job:7", job_id="7"):
                with span("work"):
                    pass
            with span("outside"):
                pass
        done = {sp.name: sp for sp in tr.finished()}
        assert done["work"].track == "job:7"
        assert done["work"].attrs["job_id"] == "7"
        assert done["outside"].attrs.get("job_id") is None

    def test_threads_get_independent_stacks(self):
        tr = Tracer()
        errs = []

        def worker(i):
            try:
                with tr.span("w", track=f"t{i}"):
                    with tr.span("inner") as sp:
                        assert sp.track == f"t{i}"
            except Exception as exc:  # pragma: no cover
                errs.append(exc)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errs
        assert len(tr.finished()) == 16


class TestAggregation:
    def test_phase_breakdown_and_track_totals(self):
        tr = Tracer()
        with tr.span("a", track=0, virtual_start=0.0) as sp:
            sp.set_virtual_end(10.0)
        with tr.span("a", track=0, virtual_start=10.0) as sp:
            sp.set_virtual_end(15.0)
        with tr.span("b", track=1, virtual_start=0.0) as sp:
            sp.set_virtual_end(7.0)
        bd = tr.phase_breakdown()
        assert bd["a"]["count"] == 2
        assert bd["a"]["virtual"] == 15.0
        assert tr.track_virtual_totals() == {0: 15.0, 1: 7.0}

    def test_counter_totals(self):
        tr = Tracer()
        with tr.span("x") as sp:
            sp.add_counters(visits=5)
        with tr.span("y") as sp:
            sp.add_counters(visits=2, stall=1.5)
        assert tr.counter_totals() == {"visits": 7.0, "stall": 1.5}
