import pytest

from repro.machine.costmodel import CostModel
from repro.parallel.common import (
    ParallelRunResult,
    partition_network_nodes,
    sequential_baseline,
)


class TestSequentialBaseline:
    def test_does_not_mutate_input(self, eq1_network):
        before = dict(eq1_network.nodes)
        sequential_baseline(eq1_network)
        assert eq1_network.nodes == before

    def test_reports_time_and_result(self, eq1_network):
        base = sequential_baseline(eq1_network)
        assert base.time > 0
        assert base.result.final_lc <= 22
        assert base.network.literal_count() == base.result.final_lc

    def test_custom_model_scales_time(self, eq1_network):
        slow = CostModel(weights={"kernel_cube_visit": 100.0})
        fast = CostModel(weights={"kernel_cube_visit": 1.0})
        t_slow = sequential_baseline(eq1_network, model=slow).time
        t_fast = sequential_baseline(eq1_network, model=fast).time
        assert t_slow > t_fast

    def test_max_seeds_affects_work(self, small_circuit):
        full = sequential_baseline(small_circuit, max_seeds=None)
        capped = sequential_baseline(small_circuit, max_seeds=4)
        assert capped.meter.counts.get("pingpong_round", 0) <= full.meter.counts.get(
            "pingpong_round", 1
        )


class TestPartitionNetworkNodes:
    def test_blocks_cover_all_nodes(self, small_circuit):
        blocks = partition_network_nodes(small_circuit, 3)
        flat = [n for b in blocks for n in b]
        assert sorted(flat) == sorted(small_circuit.nodes)

    def test_blocks_disjoint(self, small_circuit):
        blocks = partition_network_nodes(small_circuit, 3)
        seen = set()
        for b in blocks:
            assert not (seen & set(b))
            seen |= set(b)

    def test_random_partitioner(self, small_circuit):
        blocks = partition_network_nodes(small_circuit, 2, partitioner="random")
        assert sum(len(b) for b in blocks) == len(small_circuit.nodes)

    def test_unknown_partitioner(self, small_circuit):
        with pytest.raises(ValueError):
            partition_network_nodes(small_circuit, 2, partitioner="ouija")


class TestResultRecord:
    def test_to_dict_roundtrips_json(self, eq1_network):
        import json

        from repro.parallel.independent import independent_kernel_extract

        r = independent_kernel_extract(eq1_network, 2)
        r.sequential_time = 123.0
        blob = json.dumps(r.to_dict())
        back = json.loads(blob)
        assert back["algorithm"] == "independent"
        assert back["final_lc"] == r.final_lc
        assert back["speedup"] == pytest.approx(r.speedup)
