"""Unit tests of the Table 5 cube-state protocol."""

from repro.machine.costmodel import CostMeter
from repro.parallel.cubestate import CubeStateStore, CubeStatus

REF_A = ("F", (1, 2, 3))  # a 3-literal cube of node F
REF_B = ("G", (4, 5))


class TestFreeState:
    def test_untouched_cube_is_free(self):
        s = CubeStateStore()
        assert s.status(REF_A) is CubeStatus.FREE

    def test_free_value_is_literal_count(self):
        s = CubeStateStore()
        assert s.value(REF_A, asking_pid=0) == 3
        assert s.value(REF_B, asking_pid=1) == 2


class TestCoveredState:
    def test_owner_sees_trueval(self):
        """Table 5: the owner may still improve its best rectangle."""
        s = CubeStateStore()
        s.cover([REF_A], pid=2)
        assert s.status(REF_A) is CubeStatus.COVERED
        assert s.value(REF_A, asking_pid=2) == 3

    def test_non_owner_sees_zero(self):
        """Table 5: non-owners cannot change the owner's best rectangle."""
        s = CubeStateStore()
        s.cover([REF_A], pid=2)
        assert s.value(REF_A, asking_pid=0) == 0
        assert s.value(REF_A, asking_pid=5) == 0

    def test_first_coverer_wins(self):
        s = CubeStateStore()
        s.cover([REF_A], pid=0)
        s.cover([REF_A], pid=1)  # late claim ignored
        assert s.value(REF_A, asking_pid=0) == 3
        assert s.value(REF_A, asking_pid=1) == 0

    def test_recover_by_owner_is_idempotent(self):
        s = CubeStateStore()
        s.cover([REF_A], pid=0)
        s.cover([REF_A], pid=0)
        assert s.value(REF_A, asking_pid=0) == 3


class TestUncover:
    def test_owner_release_restores_value(self):
        """Paper: 'if the owning processor finds a better rectangle, it
        copies back the value of the cube from its trueval'."""
        s = CubeStateStore()
        s.cover([REF_A], pid=1)
        s.uncover([REF_A], pid=1)
        assert s.status(REF_A) is CubeStatus.FREE
        assert s.value(REF_A, asking_pid=0) == 3

    def test_non_owner_cannot_release(self):
        s = CubeStateStore()
        s.cover([REF_A], pid=1)
        s.uncover([REF_A], pid=0)
        assert s.status(REF_A) is CubeStatus.COVERED

    def test_uncover_unknown_ref_is_noop(self):
        s = CubeStateStore()
        s.uncover([REF_A], pid=0)
        assert s.status(REF_A) is CubeStatus.FREE


class TestDividedState:
    def test_divided_is_zero_for_everyone(self):
        s = CubeStateStore()
        s.cover([REF_A], pid=1)
        s.divide([REF_A])
        assert s.status(REF_A) is CubeStatus.DIVIDED
        assert s.value(REF_A, asking_pid=1) == 0
        assert s.value(REF_A, asking_pid=0) == 0

    def test_divided_is_final(self):
        s = CubeStateStore()
        s.divide([REF_A])
        s.cover([REF_A], pid=0)  # cannot resurrect
        assert s.status(REF_A) is CubeStatus.DIVIDED
        s.uncover([REF_A], pid=0)
        assert s.status(REF_A) is CubeStatus.DIVIDED

    def test_divide_without_cover(self):
        s = CubeStateStore()
        s.divide([REF_B])
        assert s.value(REF_B, asking_pid=3) == 0


class TestOrderIndependence:
    def test_search_order_bias_removed(self):
        """The end-of-Section-5.3 scenario: after covering its first-found
        rectangle's cubes, the owner re-evaluating a bigger overlapping
        rectangle must see true values, while others see zero."""
        s = CubeStateStore()
        first = [("G", (8,)), ("G", (9,)), ("G", (10,)), ("G", (11,))]
        s.cover(first, pid=0)
        # Processor 0 evaluating the bigger rectangle sees full values:
        assert sum(s.value(r, 0) for r in first) == 4
        # Processor 1 sees nothing:
        assert sum(s.value(r, 1) for r in first) == 0


def test_meter_charged():
    s = CubeStateStore()
    m = CostMeter()
    s.cover([REF_A], pid=0, meter=m)
    s.value(REF_A, 0, meter=m)
    s.divide([REF_A], meter=m)
    assert m.counts["cube_state_op"] == 3
