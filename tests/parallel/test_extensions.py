import pytest

from repro.network.simulate import random_equivalence_check
from repro.parallel.extensions import independent_cube_extract, parallel_factor_script


class TestIndependentCubeExtract:
    def test_preserves_function(self, small_pla_circuit):
        r = independent_cube_extract(small_pla_circuit, 3)
        assert random_equivalence_check(
            small_pla_circuit, r.network, vectors=128,
            outputs=small_pla_circuit.outputs,
        )

    def test_reduces_or_keeps_lc(self, small_pla_circuit):
        r = independent_cube_extract(small_pla_circuit, 2)
        assert r.final_lc <= r.initial_lc

    def test_original_untouched(self, small_pla_circuit):
        before = small_pla_circuit.literal_count()
        independent_cube_extract(small_pla_circuit, 2)
        assert small_pla_circuit.literal_count() == before

    def test_deterministic(self, small_pla_circuit):
        a = independent_cube_extract(small_pla_circuit, 3)
        b = independent_cube_extract(small_pla_circuit, 3)
        assert (a.final_lc, a.parallel_time) == (b.final_lc, b.parallel_time)

    def test_algorithm_tag(self, small_pla_circuit):
        r = independent_cube_extract(small_pla_circuit, 2)
        assert r.algorithm == "independent-cubes"


class TestParallelFactorScript:
    def test_preserves_function(self, small_circuit):
        r = parallel_factor_script(small_circuit, 3)
        assert random_equivalence_check(
            small_circuit, r.network, vectors=128, outputs=small_circuit.outputs
        )

    def test_beats_cube_only(self, small_circuit):
        """gkx+gcx finds at least what gcx alone finds."""
        cubes_only = independent_cube_extract(small_circuit, 2)
        script = parallel_factor_script(small_circuit, 2)
        assert script.final_lc <= cubes_only.final_lc

    def test_rounds_make_progress(self, small_circuit):
        one = parallel_factor_script(small_circuit, 2, rounds=1)
        two = parallel_factor_script(small_circuit, 2, rounds=2)
        assert two.final_lc <= one.final_lc

    def test_extraction_counter(self, small_circuit):
        r = parallel_factor_script(small_circuit, 2)
        assert r.extractions > 0
