import pytest

from repro.machine.backend import ProcessBackend, SerialBackend, ThreadBackend
from repro.network.simulate import random_equivalence_check
from repro.parallel.common import sequential_baseline
from repro.parallel.independent import (
    independent_kernel_extract,
    independent_kernel_extract_real,
)


class TestIndependent:
    def test_function_preserved(self, small_circuit):
        for p in (2, 4):
            r = independent_kernel_extract(small_circuit, p)
            assert random_equivalence_check(
                small_circuit, r.network, vectors=128, outputs=small_circuit.outputs
            )

    def test_quality_below_sequential(self, small_circuit):
        base = sequential_baseline(small_circuit)
        r = independent_kernel_extract(small_circuit, 4)
        assert r.final_lc >= base.result.final_lc

    def test_quality_degrades_with_partitions(self, small_circuit):
        """Paper Table 3: LC grows (quality drops) as partitions increase."""
        lcs = [
            independent_kernel_extract(small_circuit, p).final_lc
            for p in (1, 2, 6)
        ]
        assert lcs[0] <= lcs[-1]

    def test_speedup_exceeds_replicated_shape(self, small_circuit):
        """Speedup grows with p even on a ~200-literal circuit; the big
        super-linear numbers only appear at benchmark sizes (Table 3)."""
        base = sequential_baseline(small_circuit)
        r2 = independent_kernel_extract(small_circuit, 2)
        r4 = independent_kernel_extract(small_circuit, 4)
        assert base.time / r2.parallel_time > 1.0
        assert base.time / r4.parallel_time > base.time / r2.parallel_time

    def test_parallel_time_decreases_with_procs(self, small_circuit):
        times = [
            independent_kernel_extract(small_circuit, p).parallel_time
            for p in (1, 2, 4)
        ]
        assert times[2] < times[0]

    def test_duplicate_kernel_diagnostic(self, shared_kernel_network):
        r = independent_kernel_extract(shared_kernel_network, 2, seed=0)
        # {P} / {Q} is the only balanced 2-way split; a+b duplicates.
        assert r.details["duplicate_kernels"] >= 1

    def test_random_partitioner(self, small_circuit):
        r = independent_kernel_extract(small_circuit, 3, partitioner="random")
        assert random_equivalence_check(
            small_circuit, r.network, vectors=64, outputs=small_circuit.outputs
        )

    def test_unknown_partitioner(self, small_circuit):
        with pytest.raises(ValueError):
            independent_kernel_extract(small_circuit, 2, partitioner="psychic")

    def test_deterministic(self, small_circuit):
        a = independent_kernel_extract(small_circuit, 3)
        b = independent_kernel_extract(small_circuit, 3)
        assert (a.final_lc, a.parallel_time) == (b.final_lc, b.parallel_time)

    def test_more_procs_than_nodes(self, eq1_network):
        r = independent_kernel_extract(eq1_network, 6)
        assert r.final_lc <= r.initial_lc


class TestRealBackends:
    @pytest.mark.parametrize(
        "backend", [SerialBackend(), ThreadBackend(2), ProcessBackend(2)]
    )
    def test_real_parallel_matches_function(self, small_circuit, backend):
        out = independent_kernel_extract_real(small_circuit, 2, backend=backend)
        assert random_equivalence_check(
            small_circuit, out, vectors=128, outputs=small_circuit.outputs
        )
        assert out.literal_count() <= small_circuit.literal_count()

    def test_real_matches_simulated_quality(self, small_circuit):
        sim = independent_kernel_extract(small_circuit, 2)
        real = independent_kernel_extract_real(
            small_circuit, 2, backend=SerialBackend()
        )
        # Same partitioning and searcher → same final literal count.
        assert real.literal_count() == sim.final_lc
