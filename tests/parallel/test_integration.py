"""Cross-module integration: every algorithm, every circuit style,
function preservation and the paper's quality ordering."""

import pytest

from repro.circuits.generators import GeneratorSpec, generate_circuit
from repro.network.simulate import random_equivalence_check
from repro.parallel.common import sequential_baseline
from repro.parallel.independent import independent_kernel_extract
from repro.parallel.lshaped import lshaped_kernel_extract
from repro.parallel.replicated import replicated_kernel_extract


@pytest.fixture(scope="module")
def medium_circuit():
    """~800 literals, multi-level: big enough for real matrix structure."""
    spec = GeneratorSpec(
        name="t-med", seed=23, n_inputs=20, target_lc=800, two_level=False,
        pool_size=10,
    )
    return generate_circuit(spec)


@pytest.fixture(scope="module")
def medium_pla():
    spec = GeneratorSpec(
        name="t-medpla", seed=29, n_inputs=12, target_lc=800, two_level=True,
        pool_size=10,
    )
    return generate_circuit(spec)


ALGORITHMS = [
    ("replicated", lambda net, p: replicated_kernel_extract(net, p)),
    ("independent", lambda net, p: independent_kernel_extract(net, p)),
    ("lshaped", lambda net, p: lshaped_kernel_extract(net, p)),
]


class TestFunctionPreservation:
    @pytest.mark.parametrize("name,runner", ALGORITHMS)
    @pytest.mark.parametrize("procs", [2, 5])
    def test_multilevel(self, medium_circuit, name, runner, procs):
        r = runner(medium_circuit, procs)
        assert random_equivalence_check(
            medium_circuit, r.network, vectors=128, outputs=medium_circuit.outputs
        ), f"{name}@{procs}"

    @pytest.mark.parametrize("name,runner", ALGORITHMS)
    def test_two_level(self, medium_pla, name, runner):
        r = runner(medium_pla, 3)
        assert random_equivalence_check(
            medium_pla, r.network, vectors=128, outputs=medium_pla.outputs
        ), name


class TestQualityOrdering:
    """Paper's comparison: sequential ≤ L-shaped < independent in LC;
    independent > L-shaped > replicated in speedup."""

    def test_lc_ordering(self, medium_circuit):
        base = sequential_baseline(medium_circuit)
        for p in (2, 4, 6):
            lsh = lshaped_kernel_extract(medium_circuit, p).final_lc
            ind = independent_kernel_extract(medium_circuit, p).final_lc
            assert base.result.final_lc <= lsh * 1.02
            assert lsh <= ind * 1.02, f"p={p}"

    def test_all_reduce_lc(self, medium_circuit):
        for name, runner in ALGORITHMS:
            r = runner(medium_circuit, 4)
            assert r.final_lc < r.initial_lc, name

    def test_speedup_ordering_at_6(self, medium_circuit):
        base = sequential_baseline(medium_circuit)
        ind = independent_kernel_extract(medium_circuit, 6)
        lsh = lshaped_kernel_extract(medium_circuit, 6)
        s_ind = base.time / ind.parallel_time
        s_lsh = base.time / lsh.parallel_time
        assert s_ind > 1.0
        assert s_lsh > 1.0

    def test_independent_quality_degrades_monotonically_ish(self, medium_circuit):
        lc2 = independent_kernel_extract(medium_circuit, 2).final_lc
        lc8 = independent_kernel_extract(medium_circuit, 8).final_lc
        assert lc8 >= lc2 * 0.98


class TestResultRecord:
    def test_fields(self, medium_circuit):
        r = lshaped_kernel_extract(medium_circuit, 2)
        assert r.algorithm == "lshaped"
        assert r.nprocs == 2
        assert r.initial_lc == medium_circuit.literal_count()
        assert r.parallel_time > 0
        assert 0 < r.quality_ratio <= 1
        assert r.extractions > 0

    def test_speedup_property(self, medium_circuit):
        r = independent_kernel_extract(medium_circuit, 2)
        r.sequential_time = 2 * r.parallel_time
        assert r.speedup == pytest.approx(2.0)
