import pytest

from repro.machine.simulator import SimulatedMachine
from repro.network.simulate import random_equivalence_check
from repro.parallel.common import sequential_baseline
from repro.parallel.independent import independent_kernel_extract
from repro.parallel.lshaped import (
    build_lshaped_matrices,
    lshaped_kernel_extract,
    lshaped_quality_single_processor,
)


class TestLShapeSetup:
    def test_matrices_cover_all_rows(self, small_circuit):
        from repro.parallel.common import partition_network_nodes

        blocks = partition_network_nodes(small_circuit, 3)
        machine = SimulatedMachine(3)
        setup = build_lshaped_matrices(machine, small_circuit, blocks, {})
        own_rows = sum(
            1
            for p, m in enumerate(setup.matrices)
            for r, info in m.rows.items()
            if info.node in set(blocks[p])
        )
        total_rows = len(
            {r for m in setup.matrices for r in m.rows}
        )
        assert own_rows <= total_rows

    def test_ownership_is_a_partition(self, small_circuit):
        from repro.parallel.common import partition_network_nodes

        blocks = partition_network_nodes(small_circuit, 3)
        machine = SimulatedMachine(3)
        setup = build_lshaped_matrices(machine, small_circuit, blocks, {})
        all_cubes = [
            setup.matrices[p].cols[c]
            for p in range(3)
            for c in setup.owned_cols[p]
            if c in setup.matrices[p].cols
        ]
        assert len(all_cubes) == len(set(all_cubes))

    def test_alpha_gamma_measured(self, small_circuit):
        from repro.parallel.common import partition_network_nodes

        blocks = partition_network_nodes(small_circuit, 2)
        machine = SimulatedMachine(2)
        setup = build_lshaped_matrices(machine, small_circuit, blocks, {})
        assert 0 < setup.alpha < 1
        assert 0 < setup.gamma < 1

    def test_exchange_messages_sent(self, small_circuit):
        from repro.parallel.common import partition_network_nodes

        blocks = partition_network_nodes(small_circuit, 2)
        machine = SimulatedMachine(2)
        build_lshaped_matrices(machine, small_circuit, blocks, {})
        names = [ph.name for ph in machine.phases]
        assert "Bij" in names or "cube-gather" in names


class TestLShapedAlgorithm:
    def test_function_preserved(self, small_circuit, small_pla_circuit):
        for net in (small_circuit, small_pla_circuit):
            for p in (2, 4):
                r = lshaped_kernel_extract(net, p)
                assert random_equivalence_check(
                    net, r.network, vectors=128, outputs=net.outputs
                ), f"broken at p={p}"

    def test_quality_beats_independent(self, small_circuit):
        """The paper's central claim: the L-shape recovers the quality the
        independent algorithm loses, at every processor count."""
        for p in (2, 4, 6):
            li = lshaped_kernel_extract(small_circuit, p).final_lc
            ind = independent_kernel_extract(small_circuit, p).final_lc
            assert li <= ind + 0.01 * ind, f"p={p}: lshaped {li} vs indep {ind}"

    def test_quality_near_sequential(self, small_circuit):
        base = sequential_baseline(small_circuit)
        for p in (2, 6):
            r = lshaped_kernel_extract(small_circuit, p)
            assert r.final_lc <= 1.06 * base.result.final_lc

    def test_speedup_positive(self, small_circuit):
        base = sequential_baseline(small_circuit)
        r = lshaped_kernel_extract(small_circuit, 4)
        assert base.time / r.parallel_time > 1.0

    def test_no_dead_extraction_nodes(self, small_circuit):
        r = lshaped_kernel_extract(small_circuit, 3)
        fanout = r.network.fanout_map()
        for n in r.network.nodes:
            if n.startswith("[L"):
                assert fanout[n], f"dead extraction node {n}"

    def test_deterministic(self, small_circuit):
        a = lshaped_kernel_extract(small_circuit, 3)
        b = lshaped_kernel_extract(small_circuit, 3)
        assert (a.final_lc, a.parallel_time) == (b.final_lc, b.parallel_time)

    def test_single_processor_degenerate(self, small_circuit):
        base = sequential_baseline(small_circuit)
        r = lshaped_kernel_extract(small_circuit, 1)
        assert r.final_lc <= 1.05 * base.result.final_lc

    def test_details_alpha_gamma(self, small_circuit):
        r = lshaped_kernel_extract(small_circuit, 2)
        assert r.details["alpha"] > 0
        assert r.details["gamma"] > 0

    def test_more_procs_than_nodes(self, eq1_network):
        r = lshaped_kernel_extract(eq1_network, 6)
        assert r.final_lc <= r.initial_lc
        assert random_equivalence_check(
            eq1_network, r.network, outputs=["F", "G", "H"]
        )


class TestAblations:
    def test_vertical_leg_improves_quality(self, small_circuit):
        """Without the leg the algorithm degenerates toward the
        independent one (deduplicated columns only)."""
        with_leg = lshaped_kernel_extract(small_circuit, 4).final_lc
        without = lshaped_kernel_extract(
            small_circuit, 4, disable_vertical_leg=True
        ).final_lc
        assert with_leg <= without

    def test_recheck_never_hurts(self, small_circuit):
        good = lshaped_kernel_extract(small_circuit, 4).final_lc
        bad = lshaped_kernel_extract(small_circuit, 4, disable_recheck=True).final_lc
        assert good <= bad + 0.02 * bad

    def test_ablations_preserve_function(self, small_circuit):
        for kwargs in (
            {"disable_vertical_leg": True},
            {"disable_recheck": True},
        ):
            r = lshaped_kernel_extract(small_circuit, 3, **kwargs)
            assert random_equivalence_check(
                small_circuit, r.network, vectors=128, outputs=small_circuit.outputs
            ), kwargs


def test_quality_single_processor_helper(small_circuit):
    lc = lshaped_quality_single_processor(small_circuit, 4)
    assert lc == lshaped_kernel_extract(small_circuit, 4).final_lc
