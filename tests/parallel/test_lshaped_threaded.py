"""Stress tests: the L-shaped protocol under real thread interleaving.

Whatever order the OS schedules the processor threads in, the protocol
must keep the network functionally equivalent and reduce literals.  We
run several repetitions because interleavings differ run to run.
"""

import pytest

from repro.network.simulate import random_equivalence_check
from repro.parallel.lshaped_threaded import lshaped_kernel_extract_threaded


class TestThreadedLShaped:
    @pytest.mark.parametrize("rep", range(4))
    def test_function_preserved_across_interleavings(self, small_circuit, rep):
        out = lshaped_kernel_extract_threaded(small_circuit, 3, seed=rep)
        assert random_equivalence_check(
            small_circuit, out, vectors=128, outputs=small_circuit.outputs
        )

    def test_reduces_literals(self, small_circuit):
        out = lshaped_kernel_extract_threaded(small_circuit, 2)
        assert out.literal_count() < small_circuit.literal_count()

    def test_quality_comparable_to_deterministic(self, small_circuit):
        from repro.parallel.lshaped import lshaped_kernel_extract

        det = lshaped_kernel_extract(small_circuit, 3)
        thr = lshaped_kernel_extract_threaded(small_circuit, 3)
        # interleaving differs, but both should land near each other
        assert thr.literal_count() <= det.final_lc * 1.15

    def test_single_thread_degenerate(self, small_circuit):
        out = lshaped_kernel_extract_threaded(small_circuit, 1)
        assert random_equivalence_check(
            small_circuit, out, vectors=64, outputs=small_circuit.outputs
        )

    def test_two_level_circuit(self, small_pla_circuit):
        out = lshaped_kernel_extract_threaded(small_pla_circuit, 4)
        assert random_equivalence_check(
            small_pla_circuit, out, vectors=128,
            outputs=small_pla_circuit.outputs,
        )

    def test_original_untouched(self, small_circuit):
        before = small_circuit.literal_count()
        lshaped_kernel_extract_threaded(small_circuit, 2)
        assert small_circuit.literal_count() == before

    def test_paper_example(self, eq1_network):
        from repro.network.simulate import exhaustive_equivalence_check

        out = lshaped_kernel_extract_threaded(eq1_network, 2)
        assert out.literal_count() <= 25
        assert exhaustive_equivalence_check(
            eq1_network, out, outputs=["F", "G", "H"]
        )
