"""Exact reproductions of the paper's worked examples (Sections 1–5)."""

import pytest

from repro.circuits.examples import (
    example41_partition,
    example51_partition,
    paper_example_network,
)
from repro.network.simulate import exhaustive_equivalence_check
from repro.parallel.independent import independent_kernel_extract
from repro.parallel.lshaped import build_lshaped_matrices, lshaped_kernel_extract
from repro.machine.simulator import SimulatedMachine
from repro.rectangles.cover import kernel_extract
from repro.rectangles.kcmatrix import LABEL_OFFSET, build_kc_matrix


class TestExample11:
    """Example 1.1: extracting a+b drops LC from 33 to 25; repeated
    extraction (SIS) reaches 22."""

    def test_initial_lc_33(self, eq1_network):
        assert eq1_network.literal_count() == 33

    def test_sis_reaches_at_most_22(self, eq1_network):
        net = eq1_network.copy()
        res = kernel_extract(net)
        assert res.final_lc <= 22
        assert exhaustive_equivalence_check(eq1_network, net, outputs=["F", "G", "H"])


class TestFigure2AndExample41:
    """Section 4: the {F} / {G,H} partition misses cross-partition
    rectangles and duplicates the kernel a+b, landing at 26 literals."""

    def test_partitioned_matrix_is_row_sliced(self, eq1_network):
        p0, p1 = example41_partition()
        m0 = build_kc_matrix(eq1_network, nodes=p0, pid=0)
        m1 = build_kc_matrix(eq1_network, nodes=p1, pid=1)
        assert {i.node for i in m0.rows.values()} == {"F"}
        assert {i.node for i in m1.rows.values()} <= {"G", "H"}
        # label spaces disjoint, as in the figure
        assert all(r < LABEL_OFFSET for r in m0.rows)
        assert all(r > LABEL_OFFSET for r in m1.rows)

    def test_independent_extraction_gets_26(self, eq1_network):
        """Equation 2 of the paper: 26 literals instead of SIS's 22."""
        net = eq1_network.copy()
        p0, p1 = example41_partition()
        kernel_extract(net, nodes=p0, name_prefix="[p0_")
        kernel_extract(net, nodes=p1, name_prefix="[p1_")
        assert net.literal_count() == 26
        assert exhaustive_equivalence_check(eq1_network, net, outputs=["F", "G", "H"])

    def test_kernel_duplicated_across_partitions(self, shared_kernel_network):
        """The Eq. 2 phenomenon: a kernel split across partitions gets
        extracted separately in each (a + b duplicated as X and Z)."""
        net = shared_kernel_network.copy()
        kernel_extract(net, nodes=["P"], name_prefix="[p0_")
        kernel_extract(net, nodes=["Q"], name_prefix="[p1_")
        t = net.table
        ab = tuple(sorted([(t.get("a"),), (t.get("b"),)]))
        holders = [n for n, f in net.nodes.items() if f == ab]
        assert len(holders) == 2
        # whereas joint extraction shares one copy
        joint = shared_kernel_network.copy()
        kernel_extract(joint)
        holders_joint = [n for n, f in joint.nodes.items() if f == ab]
        assert len(holders_joint) <= 1

    def test_algorithm_runner_matches(self, eq1_network):
        res = independent_kernel_extract(eq1_network, 2, seed=0)
        assert res.final_lc >= 24  # strictly worse than SIS's 22
        assert exhaustive_equivalence_check(
            eq1_network, res.network, outputs=["F", "G", "H"]
        )


class TestExample51:
    """Section 5.2: offset labeling and the L-shaped exchange for the
    {G,H} / {F} split."""

    def test_offset_labeling(self, eq1_network):
        blocks = list(example51_partition())
        machine = SimulatedMachine(2)
        setup = build_lshaped_matrices(machine, eq1_network, blocks, {})
        m0, m1 = setup.matrices
        # proc 1's own rows are labeled 100001+ (paper: de -> 100004 etc.)
        own_rows_1 = [r for r in m1.rows if m1.rows[r].node == "F"]
        assert own_rows_1 and all(r > LABEL_OFFSET for r in own_rows_1)
        own_rows_0 = [r for r in m0.rows if m0.rows[r].node in ("G", "H")]
        assert own_rows_0 and all(r < LABEL_OFFSET for r in own_rows_0)

    def test_greedy_cube_ownership(self, eq1_network):
        """Proc 0 owns a,b,c,ce,f; proc 1 owns only its new cubes (de, g)."""
        blocks = list(example51_partition())
        machine = SimulatedMachine(2)
        setup = build_lshaped_matrices(machine, eq1_network, blocks, {})
        t = eq1_network.table
        cubes0 = {setup.matrices[0].cols[c] for c in setup.owned_cols[0]}
        cubes1 = {setup.matrices[1].cols[c] for c in setup.owned_cols[1]}
        assert (t.get("a"),) in cubes0
        assert (t.get("b"),) in cubes0
        assert (t.get("f"),) in cubes0
        g_cube = (t.get("g"),)
        de_cube = tuple(sorted((t.get("d"), t.get("e"))))
        assert g_cube in cubes1 and de_cube in cubes1
        assert not cubes0 & cubes1

    def test_vertical_leg_present(self, eq1_network):
        """Proc 0's matrix gains F's rows restricted to proc-0 columns
        (Figure 4), so the cross-partition rectangle is visible."""
        blocks = list(example51_partition())
        machine = SimulatedMachine(2)
        setup = build_lshaped_matrices(machine, eq1_network, blocks, {})
        m0 = setup.matrices[0]
        f_rows = [r for r, i in m0.rows.items() if i.node == "F"]
        assert f_rows, "vertical leg missing"
        for r in f_rows:
            assert all(c in setup.owned_cols[0] for c in m0.by_row[r])

    def test_horizontal_slab_keeps_unowned_columns(self, eq1_network):
        """Proc 1 keeps its full slab: column f (owned by 0, global label 5)
        still appears in its matrix — the overlap of Example 5.2."""
        blocks = list(example51_partition())
        machine = SimulatedMachine(2)
        setup = build_lshaped_matrices(machine, eq1_network, blocks, {})
        m1 = setup.matrices[1]
        t = eq1_network.table
        f_col_cube = (t.get("f"),)
        assert f_col_cube in m1.col_of_cube
        label = m1.col_of_cube[f_col_cube]
        assert label < LABEL_OFFSET  # relabeled to proc 0's global label

    def test_lshaped_recovers_cross_partition_quality(self, eq1_network):
        """The full algorithm lands at ≤ 23 literals (paper's point: the
        L-shape recovers nearly all of SIS's 22 vs independent's 26)."""
        res = lshaped_kernel_extract(eq1_network, 2, seed=0)
        assert res.final_lc <= 23
        assert exhaustive_equivalence_check(
            eq1_network, res.network, outputs=["F", "G", "H"]
        )


class TestExample52:
    """Section 5.3: without the zero-cost re-check, interleaved extraction
    of overlapping rectangles loses most of the gain."""

    @staticmethod
    def _mid_state():
        """The exact state of Example 5.2: processor 1 already extracted
        Y = de + f from F; processor 0's partial rectangle (X = a + b over
        co-kernels de, f) arrives late."""
        from repro.network.boolean_network import BooleanNetwork

        sim = BooleanNetwork("ex52")
        sim.add_inputs(list("abcdefg"))
        sim.add_node("Y", "d e + f")
        sim.add_node("F", "a Y + b Y + a g + c g + c d e")
        sim.add_node("X", "a + b")
        sim.add_output("F")
        return sim

    def _apply(self, forced_addback: bool):
        from repro.machine.costmodel import CostMeter
        from repro.parallel.cubestate import CubeStateStore
        from repro.parallel.lshaped import _apply_kernel_to_node

        sim = self._mid_state()
        t = sim.table
        mk = lambda *ls: tuple(sorted(t.id_of(x) for x in ls))
        kernel = tuple(sorted([mk("a"), mk("b")]))
        rows = [
            ("F", mk("d", "e"), (("F", mk("a", "d", "e")), ("F", mk("b", "d", "e")))),
            ("F", mk("f"), (("F", mk("a", "f")), ("F", mk("b", "f")))),
        ]
        store = CubeStateStore()
        store.divide(ref for _, _, refs in rows for ref in refs)
        if forced_addback:
            expr = set(sim.nodes["F"])
            for _, _, refs in rows:
                expr.update(cube for _, cube in refs)
            sim.set_expression("F", sorted(expr))
        _apply_kernel_to_node(
            sim, "F", kernel, t.id_of("X"), rows, store, pid=1, meter=CostMeter()
        )
        return sim

    def test_scripted_recheck_saves_8(self):
        """Paper: F' = XY + ag + cg + cde — 9 literals, saving 8."""
        sim = self._apply(forced_addback=False)
        assert sim.literal_count("F") == 9

    def test_scripted_naive_saves_only_3(self):
        """Paper: adding the cubes back yields 14 literals, saving just 3."""
        sim = self._apply(forced_addback=True)
        assert sim.literal_count("F") == 14

    def test_scripted_both_preserve_function(self):
        from repro.network.simulate import exhaustive_equivalence_check

        ref = self._mid_state()
        for forced in (False, True):
            sim = self._apply(forced_addback=forced)
            assert exhaustive_equivalence_check(ref, sim, outputs=["F"])

    def test_recheck_beats_no_recheck(self, eq1_network):
        good = lshaped_kernel_extract(eq1_network, 2, seed=0)
        bad = lshaped_kernel_extract(eq1_network, 2, seed=0, disable_recheck=True)
        assert good.final_lc <= bad.final_lc
        # both remain correct
        for r in (good, bad):
            assert exhaustive_equivalence_check(
                eq1_network, r.network, outputs=["F", "G", "H"]
            )
