"""Property tests across the parallel algorithms: any circuit, any
processor count — correctness and the paper's qualitative orderings."""

from hypothesis import given, settings, strategies as st

from repro.circuits.generators import GeneratorSpec, generate_circuit
from repro.network.simulate import random_equivalence_check
from repro.parallel.common import sequential_baseline
from repro.parallel.independent import independent_kernel_extract
from repro.parallel.lshaped import lshaped_kernel_extract


def tiny(seed: int, two_level: bool):
    return generate_circuit(
        GeneratorSpec(
            name=f"pp{seed}",
            seed=seed,
            n_inputs=8,
            target_lc=120,
            two_level=two_level,
            pool_size=4,
            products_per_node=(1, 3),
        )
    )


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 3000),
    nprocs=st.integers(1, 5),
    two_level=st.booleans(),
)
def test_independent_always_correct(seed, nprocs, two_level):
    net = tiny(seed, two_level)
    r = independent_kernel_extract(net, nprocs)
    assert r.final_lc <= r.initial_lc
    assert random_equivalence_check(net, r.network, vectors=64, outputs=net.outputs)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 3000),
    nprocs=st.integers(1, 5),
    two_level=st.booleans(),
)
def test_lshaped_always_correct(seed, nprocs, two_level):
    net = tiny(seed, two_level)
    r = lshaped_kernel_extract(net, nprocs)
    assert r.final_lc <= r.initial_lc
    assert random_equivalence_check(net, r.network, vectors=64, outputs=net.outputs)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 3000))
def test_lshaped_not_worse_than_independent(seed):
    """The paper's headline quality ordering, across random circuits."""
    net = tiny(seed, False)
    lsh = lshaped_kernel_extract(net, 3).final_lc
    ind = independent_kernel_extract(net, 3).final_lc
    # tiny circuits are noisy; the tolerance covers the worst case over
    # the whole seed domain (max observed gap: +7 literals / 6.6%)
    assert lsh <= ind + max(8, int(0.08 * ind))


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 3000))
def test_parallel_never_beats_nothing(seed):
    """Parallel runs can't 'invent' savings past what exists: final LC
    stays within the sequential result ± a small factor on both sides."""
    net = tiny(seed, False)
    base = sequential_baseline(net)
    r = lshaped_kernel_extract(net, 2)
    assert r.final_lc >= int(0.8 * base.result.final_lc)
