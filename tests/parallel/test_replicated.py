import pytest

from repro.network.simulate import random_equivalence_check
from repro.parallel.replicated import replicated_kernel_extract
from repro.rectangles.search import BudgetExceeded


class TestReplicated:
    def test_quality_matches_single_proc(self, small_circuit):
        """Replication keeps the global picture: LC independent of p."""
        r1 = replicated_kernel_extract(small_circuit, 1)
        results = {p: replicated_kernel_extract(small_circuit, p) for p in (2, 4)}
        for p, r in results.items():
            assert abs(r.final_lc - r1.final_lc) <= 0.01 * r1.final_lc

    def test_function_preserved(self, small_circuit):
        r = replicated_kernel_extract(small_circuit, 3)
        assert random_equivalence_check(
            small_circuit, r.network, vectors=128, outputs=small_circuit.outputs
        )

    def test_original_untouched(self, small_circuit):
        before = small_circuit.literal_count()
        replicated_kernel_extract(small_circuit, 2)
        assert small_circuit.literal_count() == before

    def test_speedup_poor_but_positive(self, small_circuit):
        """The paper's signature: sub-linear speedup from per-step syncs."""
        r1 = replicated_kernel_extract(small_circuit, 1)
        r6 = replicated_kernel_extract(small_circuit, 6)
        speedup = r1.parallel_time / r6.parallel_time
        assert speedup < 6  # far from linear

    def test_time_grows_with_barriers(self, eq1_network):
        r1 = replicated_kernel_extract(eq1_network, 1)
        r4 = replicated_kernel_extract(eq1_network, 4)
        # tiny circuit: parallelism can't pay for the barriers
        assert r4.parallel_time >= r1.parallel_time * 0.5

    def test_budget_exceeded_raises(self, small_circuit):
        with pytest.raises(BudgetExceeded):
            replicated_kernel_extract(small_circuit, 2, search_budget=5)

    def test_no_budget_means_unbounded(self, eq1_network):
        r = replicated_kernel_extract(eq1_network, 2, search_budget=None)
        assert r.final_lc <= 22

    def test_extraction_count_reported(self, small_circuit):
        r = replicated_kernel_extract(small_circuit, 2)
        assert r.extractions > 0
        assert r.details["budget_used"] > 0

    def test_max_iterations(self, small_circuit):
        r = replicated_kernel_extract(small_circuit, 2, max_iterations=1)
        assert r.extractions <= 1

    def test_deterministic(self, small_circuit):
        a = replicated_kernel_extract(small_circuit, 3)
        b = replicated_kernel_extract(small_circuit, 3)
        assert a.final_lc == b.final_lc
        assert a.parallel_time == b.parallel_time
