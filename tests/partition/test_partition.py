import networkx as nx
import pytest

from repro.machine.costmodel import CostMeter
from repro.partition.fm import fm_bipartition
from repro.partition.graphs import block_nodes, block_weights, circuit_graph, cut_size
from repro.partition.multiway import multiway_partition, random_partition


@pytest.fixture
def two_cluster_graph():
    """Two dense 5-cliques joined by one light edge — obvious min cut."""
    g = nx.Graph()
    for base in ("a", "b"):
        members = [f"{base}{i}" for i in range(5)]
        for v in members:
            g.add_node(v, weight=1)
        for i in range(5):
            for j in range(i + 1, 5):
                g.add_edge(members[i], members[j], weight=3)
    g.add_edge("a0", "b0", weight=1)
    return g


class TestCircuitGraph:
    def test_vertices_are_internal_nodes(self, eq1_network):
        g = circuit_graph(eq1_network)
        assert set(g.nodes) == {"F", "G", "H"}

    def test_edges_from_fanin(self):
        from repro.network.boolean_network import BooleanNetwork

        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("x", "a")
        net.add_node("y", "x + a")
        g = circuit_graph(net)
        assert g.has_edge("x", "y")

    def test_edge_weight_counts_references(self):
        from repro.network.boolean_network import BooleanNetwork

        net = BooleanNetwork()
        net.add_inputs(["a", "b"])
        net.add_node("x", "a + b")
        net.add_node("y", "xa + xb + x'")
        g = circuit_graph(net)
        assert g["x"]["y"]["weight"] >= 2

    def test_vertex_weight_is_lc(self, eq1_network):
        g = circuit_graph(eq1_network)
        assert g.nodes["F"]["weight"] == eq1_network.literal_count("F")

    def test_no_pi_vertices(self, eq1_network):
        g = circuit_graph(eq1_network)
        assert "a" not in g.nodes


class TestCutSize:
    def test_zero_when_together(self, two_cluster_graph):
        assignment = {v: 0 for v in two_cluster_graph.nodes}
        assert cut_size(two_cluster_graph, assignment) == 0

    def test_counts_weights(self, two_cluster_graph):
        assignment = {
            v: (0 if v.startswith("a") else 1) for v in two_cluster_graph.nodes
        }
        assert cut_size(two_cluster_graph, assignment) == 1


class TestFM:
    def test_finds_natural_cut(self, two_cluster_graph):
        side = fm_bipartition(two_cluster_graph, seed=1)
        assert cut_size(two_cluster_graph, side) == 1

    def test_balanced(self, two_cluster_graph):
        side = fm_bipartition(two_cluster_graph, seed=1)
        w = block_weights(two_cluster_graph, side, 2)
        assert min(w) >= 3

    def test_deterministic(self, two_cluster_graph):
        assert fm_bipartition(two_cluster_graph, seed=5) == fm_bipartition(
            two_cluster_graph, seed=5
        )

    def test_empty_graph(self):
        assert fm_bipartition(nx.Graph()) == {}

    def test_initial_assignment_respected(self, two_cluster_graph):
        initial = {
            v: (0 if v.startswith("a") else 1) for v in two_cluster_graph.nodes
        }
        side = fm_bipartition(two_cluster_graph, initial=initial)
        assert cut_size(two_cluster_graph, side) <= 1

    def test_target_fraction(self, two_cluster_graph):
        side = fm_bipartition(two_cluster_graph, target_fraction=0.3, seed=2)
        w = block_weights(two_cluster_graph, side, 2)
        assert w[0] <= w[1]

    def test_meter_charged(self, two_cluster_graph):
        meter = CostMeter()
        fm_bipartition(two_cluster_graph, meter=meter)
        assert meter.counts["partition_pass"] >= 1


class TestMultiway:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 6])
    def test_covers_all_vertices(self, two_cluster_graph, n):
        assignment = multiway_partition(two_cluster_graph, n)
        assert set(assignment) == set(two_cluster_graph.nodes)
        assert set(assignment.values()) <= set(range(n))

    def test_all_blocks_nonempty(self, two_cluster_graph):
        for n in (2, 3, 5):
            assignment = multiway_partition(two_cluster_graph, n)
            blocks = block_nodes(assignment, n)
            assert all(blocks), f"empty block for n={n}"

    def test_two_way_matches_fm_quality(self, two_cluster_graph):
        assignment = multiway_partition(two_cluster_graph, 2)
        assert cut_size(two_cluster_graph, assignment) == 1

    def test_deterministic(self, two_cluster_graph):
        a = multiway_partition(two_cluster_graph, 3, seed=9)
        b = multiway_partition(two_cluster_graph, 3, seed=9)
        assert a == b

    def test_beats_random_on_clustered(self, two_cluster_graph):
        mc = multiway_partition(two_cluster_graph, 2, seed=0)
        rnd = random_partition(two_cluster_graph, 2, seed=0)
        assert cut_size(two_cluster_graph, mc) <= cut_size(two_cluster_graph, rnd)

    def test_invalid_nblocks(self, two_cluster_graph):
        with pytest.raises(ValueError):
            multiway_partition(two_cluster_graph, 0)

    def test_on_circuit(self, small_circuit):
        g = circuit_graph(small_circuit)
        for n in (2, 4):
            assignment = multiway_partition(g, n)
            blocks = block_nodes(assignment, n)
            assert sum(len(b) for b in blocks) == len(g.nodes)
            assert all(blocks)


class TestRandomPartition:
    def test_balanced_weights(self, two_cluster_graph):
        assignment = random_partition(two_cluster_graph, 2, seed=3)
        w = block_weights(two_cluster_graph, assignment, 2)
        assert abs(w[0] - w[1]) <= 2

    def test_deterministic(self, two_cluster_graph):
        assert random_partition(two_cluster_graph, 3, seed=1) == random_partition(
            two_cluster_graph, 3, seed=1
        )
