"""The portfolio perf gate: validate_portfolio_report on synthetic
payloads, plus one real quick-sweep smoke run.

The gate mutations mirror the serving-report tests: start from a known
good payload and break one invariant at a time, asserting the validator
names the break.
"""

import copy

from repro.portfolio.bench import (
    SCHEMA,
    run_portfolio_bench,
    validate_portfolio_report,
)


def _lane(name, status, lc=None):
    return {"lane": name, "status": status, "final_lc": lc}


def _run(winner="fast", final_lc=20, cancelled=1, equivalent=True):
    lanes = [
        _lane("fast", "won", final_lc),
        _lane("steady", "completed", final_lc + 5),
        _lane("slow", "cancelled"),
    ]
    return {
        "winner": winner,
        "initial_lc": 40,
        "final_lc": final_lc,
        "host_ms": 12.0,
        "cancelled": cancelled,
        "budget_used": 100,
        "lanes_total": len(lanes),
        "statuses": {"won": 1, "completed": 1, "cancelled": 1},
        "equivalent": equivalent,
        "lanes": lanes,
    }


def _report():
    rows = []
    for klass in ("latency", "quality"):
        runs = [_run(), _run()]
        rows.append({
            "circuit": "dalu",
            "scale": 0.6,
            "klass": klass,
            "repeats": len(runs),
            "winners": [r["winner"] for r in runs],
            "runs": runs,
        })
    return {
        "schema": SCHEMA,
        "python": "3.12.0",
        "procs": [2, 4],
        "node_budget": 200000,
        "lanes": ["fast", "steady", "slow"],
        "vectors": 64,
        "host_seconds": 1.0,
        "rows": rows,
    }


class TestGateAcceptsGoodReport:
    def test_synthetic_good_report(self):
        assert validate_portfolio_report(_report()) == []

    def test_latency_cancellation_gated_per_row_not_per_run(self):
        report = _report()
        row = report["rows"][0]
        assert row["klass"] == "latency"
        # One repeat cancelled nothing — fine as long as the row did.
        run = row["runs"][1]
        run["cancelled"] = 0
        run["lanes"][2]["status"] = "completed"
        run["statuses"] = {"won": 1, "completed": 2}
        assert validate_portfolio_report(report) == []


class TestGateRejectsBrokenReports:
    def _expect(self, report, needle):
        problems = validate_portfolio_report(report)
        assert any(needle in p for p in problems), \
            f"expected {needle!r} in {problems}"

    def test_not_a_dict(self):
        assert validate_portfolio_report([]) == [
            "report is not a JSON object"
        ]

    def test_wrong_schema(self):
        report = _report()
        report["schema"] = "portfolio/0"
        self._expect(report, "schema is 'portfolio/0'")

    def test_empty_rows(self):
        report = _report()
        report["rows"] = []
        self._expect(report, "non-empty sweep")

    def test_nondeterministic_winners(self):
        report = _report()
        report["rows"][0]["runs"][1]["winner"] = "steady"
        report["rows"][0]["winners"][1] = "steady"
        self._expect(report, "winner not deterministic")

    def test_quality_lc_must_be_deterministic(self):
        report = _report()
        quality = report["rows"][1]
        quality["runs"][1] = _run(final_lc=25)
        quality["winners"] = [r["winner"] for r in quality["runs"]]
        self._expect(report, "quality LC not deterministic")

    def test_inequivalent_run(self):
        report = _report()
        report["rows"][0]["runs"][0]["equivalent"] = False
        self._expect(report, "not equivalent")

    def test_unknown_lane_status(self):
        report = _report()
        report["rows"][0]["runs"][0]["lanes"][1]["status"] = "vanished"
        self._expect(report, "unknown lane status 'vanished'")

    def test_exactly_one_winner_required(self):
        report = _report()
        run = report["rows"][0]["runs"][0]
        run["lanes"][1]["status"] = "won"
        run["statuses"] = {"won": 2, "cancelled": 1}
        self._expect(report, "expected exactly 1 winning lane, got 2")

    def test_accounting_must_close(self):
        report = _report()
        run = report["rows"][0]["runs"][0]
        run["lanes_total"] = 5
        self._expect(report, "lane accounting does not close")

    def test_cancelled_field_must_match_reports(self):
        report = _report()
        report["rows"][0]["runs"][0]["cancelled"] = 2
        self._expect(report, "cancelled count 2 disagrees")

    def test_winner_lane_lc_must_match_result(self):
        report = _report()
        report["rows"][0]["runs"][0]["lanes"][0]["final_lc"] = 99
        self._expect(report, "winner lane LC 99 != result LC 20")

    def test_quality_must_take_the_minimum(self):
        report = _report()
        quality = report["rows"][1]
        for run in quality["runs"]:
            run["lanes"][1]["final_lc"] = 10  # completed lane beat the winner
        self._expect(report, "worse than best lane LC 10")

    def test_latency_row_with_zero_cancellations(self):
        report = _report()
        for run in report["rows"][0]["runs"]:
            run["cancelled"] = 0
            run["lanes"][2]["status"] = "completed"
            run["statuses"] = {"won": 1, "completed": 2}
        self._expect(report, "latency races cancelled no losers")

    def test_missing_class(self):
        report = _report()
        report["rows"] = [r for r in report["rows"]
                          if r["klass"] == "latency"]
        self._expect(report, "never exercised class(es): quality")

    def test_mutations_do_not_leak(self):
        pristine = _report()
        snapshot = copy.deepcopy(pristine)
        validate_portfolio_report(pristine)
        assert pristine == snapshot  # the validator never mutates


class TestQuickSweep:
    def test_quick_bench_passes_its_own_gate(self):
        report = run_portfolio_bench(
            workloads=(("example", 1.0),), repeats=2, procs=(2,),
            vectors=32,
        )
        # The example circuit is too small for the latency settle window
        # to leave losers running, so drop only that row's gate by
        # checking runs directly.
        problems = [
            p for p in validate_portfolio_report(report)
            if "cancelled no losers" not in p
        ]
        assert problems == []
        assert report["schema"] == SCHEMA
        assert {row["klass"] for row in report["rows"]} == {
            "latency", "quality"
        }
