"""The portfolio racer, driven by synthetic lanes with known timing.

Synthetic lanes make every race deterministic: delays, literal counts,
failures and budget spends are scripted, so the scheduling-class
semantics (first-finisher-with-settle vs. best-quality), cancellation,
the shared budget pool and the selector fast path are each pinned
without depending on real search timings.  One integration test races
the real catalogue on the paper's example network.
"""

import time

import pytest

from repro.circuits import paper_example_network
from repro.machine.cancel import check_cancelled
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, use_tracer
from repro.portfolio import (
    Lane,
    LaneBudget,
    LaneOutcome,
    PortfolioError,
    PortfolioStats,
    PortfolioTimeout,
    SharedSearchBudget,
    StrategySelector,
    default_lanes,
    lane_names,
    run_portfolio,
)
from repro.rectangles.search import BudgetExceeded


def lane(name, delay=0.0, lc=10, rank=0, fail=False, spend=0,
         fail_after_first=None):
    """A scripted lane: sleep cooperatively, optionally spend budget,
    then succeed with *lc* or raise."""
    calls = {"n": 0}

    def run(network, budget):
        calls["n"] += 1
        if spend and budget is not None:
            budget.spend(spend)
        end = time.perf_counter() + delay
        while time.perf_counter() < end:
            check_cancelled()
            time.sleep(0.002)
        if fail or (fail_after_first is not None
                    and calls["n"] > fail_after_first):
            raise RuntimeError("scripted lane failure")
        return LaneOutcome(network=network.copy(), final_lc=lc)

    return Lane(name=name, kind="synthetic", run=run,
                uses_budget=bool(spend), latency_rank=rank)


@pytest.fixture
def net():
    return paper_example_network()


class TestLatencyClass:
    def test_fast_lane_wins_and_slow_is_cancelled(self, net):
        res = run_portfolio(net, klass="latency", selector=False,
                            stats=PortfolioStats(), lanes=[
                                lane("slow", delay=2.0, lc=1),
                                lane("fast", delay=0.01, lc=20),
                            ])
        assert res.winner == "fast"
        assert res.final_lc == 20
        assert res.cancelled == 1
        by_name = {r.lane: r.status for r in res.lanes}
        assert by_name == {"fast": "won", "slow": "cancelled"}
        assert not res.memoized

    def test_settle_window_breaks_ties_by_rank(self, net):
        # The rank-1 lane finishes first, but the rank-0 lane lands
        # inside the settle window (0.1s floor) and takes the win.
        res = run_portfolio(net, klass="latency", selector=False,
                            stats=PortfolioStats(), lanes=[
                                lane("eager", delay=0.01, lc=1, rank=1),
                                lane("ranked", delay=0.04, lc=2, rank=0),
                            ])
        assert res.winner == "ranked"
        assert res.final_lc == 2

    def test_equal_ranks_fall_back_to_catalogue_order(self, net):
        res = run_portfolio(net, klass="latency", selector=False,
                            stats=PortfolioStats(), lanes=[
                                lane("first", delay=0.03, lc=1, rank=0),
                                lane("second", delay=0.01, lc=2, rank=0),
                            ])
        assert res.winner == "first"

    def test_failed_fast_lane_does_not_win(self, net):
        res = run_portfolio(net, klass="latency", selector=False,
                            stats=PortfolioStats(), lanes=[
                                lane("crashy", delay=0.0, fail=True),
                                lane("steady", delay=0.05, lc=7),
                            ])
        assert res.winner == "steady"
        statuses = {r.lane: r.status for r in res.lanes}
        assert statuses["crashy"] == "failed"
        assert "scripted lane failure" in [
            r.error for r in res.lanes if r.lane == "crashy"
        ][0]

    def test_deadline_with_no_finisher_times_out(self, net):
        t0 = time.perf_counter()
        with pytest.raises(PortfolioTimeout):
            run_portfolio(net, klass="latency", selector=False,
                          stats=PortfolioStats(), deadline=0.15,
                          lanes=[lane("glacial", delay=10.0)])
        assert time.perf_counter() - t0 < 5.0

    def test_all_lanes_failing_raises(self, net):
        with pytest.raises(PortfolioError, match="scripted lane failure"):
            run_portfolio(net, klass="latency", selector=False,
                          stats=PortfolioStats(), lanes=[
                              lane("a", fail=True), lane("b", fail=True),
                          ])


class TestQualityClass:
    def test_best_literal_count_wins(self, net):
        res = run_portfolio(net, klass="quality", selector=False,
                            stats=PortfolioStats(), lanes=[
                                lane("ok", delay=0.01, lc=30),
                                lane("best", delay=0.03, lc=20),
                                lane("meh", delay=0.02, lc=25),
                            ])
        assert res.winner == "best"
        assert res.final_lc == 20
        assert res.cancelled == 0
        assert [r.status for r in res.lanes] == [
            "completed", "won", "completed"
        ]

    def test_lc_ties_break_by_catalogue_order(self, net):
        res = run_portfolio(net, klass="quality", selector=False,
                            stats=PortfolioStats(), lanes=[
                                lane("left", delay=0.02, lc=20),
                                lane("right", delay=0.01, lc=20),
                            ])
        assert res.winner == "left"

    def test_deadline_keeps_best_so_far(self, net):
        res = run_portfolio(net, klass="quality", selector=False,
                            stats=PortfolioStats(), deadline=0.2,
                            lanes=[
                                lane("quick", delay=0.01, lc=50),
                                lane("glacial", delay=10.0, lc=1),
                            ])
        assert res.winner == "quick"
        assert res.final_lc == 50
        assert {r.lane: r.status for r in res.lanes}["glacial"] == \
            "cancelled"


class TestSharedBudget:
    def test_shared_budget_spend_and_overflow(self):
        shared = SharedSearchBudget(100)
        shared.spend(60)
        with pytest.raises(BudgetExceeded):
            shared.spend(60)
        assert shared.used == 120  # the overflowing spend is recorded

    def test_lane_budget_charges_shared_pool(self):
        shared = SharedSearchBudget(1000)
        a, b = LaneBudget(shared=shared), LaneBudget(shared=shared)
        a.spend(300)
        b.spend(200)
        assert (a.used, b.used, shared.used) == (300, 200, 500)

    def test_lane_budget_cap_is_local(self):
        shared = SharedSearchBudget(10_000)
        capped = LaneBudget(shared=shared, cap=50)
        with pytest.raises(BudgetExceeded, match="truncation cap"):
            capped.spend(60)
        shared.spend(1)  # the pool itself is far from exhausted

    def test_race_charges_one_shared_pool(self, net):
        res = run_portfolio(net, klass="quality", selector=False,
                            stats=PortfolioStats(), node_budget=1000,
                            lanes=[
                                lane("s1", lc=5, spend=100),
                                lane("s2", lc=6, spend=200),
                            ])
        assert res.budget_used == 300
        assert res.budget_max == 1000

    def test_budget_exhaustion_is_a_lane_status_not_a_race_failure(
            self, net):
        res = run_portfolio(net, klass="quality", selector=False,
                            stats=PortfolioStats(), node_budget=150,
                            lanes=[
                                lane("hungry", lc=1, spend=500),
                                lane("frugal", delay=0.02, lc=9),
                            ])
        assert res.winner == "frugal"
        assert {r.lane: r.status for r in res.lanes}["hungry"] == "budget"


class TestSelectorFastPath:
    def test_second_race_is_memoized(self, net):
        sel = StrategySelector()
        stats = PortfolioStats()
        lanes = [lane("slow", delay=0.5, lc=1), lane("fast", lc=20)]
        first = run_portfolio(net, klass="latency", selector=sel,
                              stats=stats, lanes=lanes)
        second = run_portfolio(net, klass="latency", selector=sel,
                               stats=stats, lanes=lanes)
        assert not first.memoized and second.memoized
        assert second.winner == first.winner == "fast"
        assert len(second.lanes) == 1
        assert second.lanes[0].status == "won"
        assert stats.snapshot()["selector_hits"] == 1

    def test_classes_memoize_independently(self, net):
        sel = StrategySelector()
        lanes = [lane("fast", lc=30), lane("thorough", delay=0.05, lc=10)]
        run_portfolio(net, klass="latency", selector=sel,
                      stats=PortfolioStats(), lanes=lanes)
        quality = run_portfolio(net, klass="quality", selector=sel,
                                stats=PortfolioStats(), lanes=lanes)
        assert not quality.memoized  # latency's memo must not apply
        assert quality.winner == "thorough"

    def test_failing_remembered_lane_falls_back_to_race(self, net):
        sel = StrategySelector()
        stats = PortfolioStats()
        lanes = [
            lane("flaky", lc=5, fail_after_first=1),
            lane("backup", delay=0.05, lc=40),
        ]
        first = run_portfolio(net, klass="latency", selector=sel,
                              stats=stats, lanes=lanes)
        assert first.winner == "flaky"
        second = run_portfolio(net, klass="latency", selector=sel,
                               stats=stats, lanes=lanes)
        assert not second.memoized
        assert second.winner == "backup"
        assert stats.snapshot()["selector_hits"] == 0


class TestObservability:
    def test_metrics_and_stats_counters(self, net):
        metrics = MetricsRegistry()
        stats = PortfolioStats()
        run_portfolio(net, klass="latency", selector=False, stats=stats,
                      metrics=metrics, lanes=[
                          lane("fast", lc=3), lane("slow", delay=1.0),
                      ])
        snap = stats.snapshot()
        assert snap["portfolio_races"] == 1
        assert snap["portfolio_cancelled_lanes"] == 1
        assert snap["portfolio_lane_wins"] == {"fast": 1}
        counters = metrics.snapshot()["counters"]
        assert counters["portfolio_races"] == 1
        assert counters["portfolio_lane_wins_fast"] == 1
        assert counters["portfolio_cancelled_lanes"] == 1

    def test_traced_race_emits_lane_and_verdict_spans(self, net):
        tracer = Tracer(name="portfolio-test")
        with use_tracer(tracer):
            run_portfolio(net, klass="latency", selector=False,
                          stats=PortfolioStats(), lanes=[
                              lane("fast", lc=3),
                              lane("slow", delay=0.5),
                          ])
        names = [sp.name for sp in tracer.finished()]
        assert "lane:fast" in names and "lane:slow" in names
        assert "portfolio-race" in names
        assert "portfolio-verdict" in names


class TestRealCatalogue:
    def test_default_lane_names(self):
        assert lane_names((2,)) == (
            "seq-exhaustive", "dnf-truncated", "seq-pingpong",
            "replicated@2", "independent@2", "lshaped@2",
        )
        assert len(default_lanes(procs=(2, 4))) == 9

    @pytest.mark.parametrize("klass", ["latency", "quality"])
    def test_paper_example_race_is_equivalent(self, net, klass):
        from repro.network.simulate import exhaustive_equivalence_check

        res = run_portfolio(net, klass=klass, procs=(2,), selector=False,
                            stats=PortfolioStats())
        assert res.final_lc <= res.initial_lc
        assert res.final_lc == res.network.literal_count()
        assert exhaustive_equivalence_check(net, res.network,
                                            outputs=net.outputs)
        assert sum(1 for r in res.lanes if r.status == "won") == 1

    def test_quality_never_worse_than_any_single_lane(self, net):
        res = run_portfolio(net, klass="quality", procs=(2,),
                            selector=False, stats=PortfolioStats())
        finished = [r.final_lc for r in res.lanes
                    if r.final_lc is not None]
        assert res.final_lc == min(finished)
