"""Circuit features, family keys, and the strategy-selector memo."""

import pytest

from repro.circuits import load_circuit, paper_example_network
from repro.portfolio import (
    SELECTOR_SCHEMA,
    StrategySelector,
    circuit_features,
    default_selector,
    family_key,
    install_default_selector,
    resolve_selector,
    selector_enabled,
)
from repro.portfolio.selector import decision_key
from repro.serve.diskcache import DiskCache


@pytest.fixture
def net():
    return paper_example_network()


@pytest.fixture
def feats(net):
    return circuit_features(net)


class TestCircuitFeatures:
    def test_deterministic(self, net):
        assert circuit_features(net) == circuit_features(net)

    def test_as_dict_fields(self, feats):
        doc = feats.as_dict()
        assert set(doc) == {
            "nodes", "literals", "kc_rows", "kc_cols", "kc_entries",
            "kc_density", "kernel_cubes", "dup_row_share",
        }
        assert doc["literals"] > 0
        assert 0.0 <= doc["kc_density"] <= 1.0
        assert 0.0 <= doc["dup_row_share"] <= 1.0

    def test_family_key_shape_and_stability(self, net, feats):
        key = family_key(feats)
        assert key == family_key(circuit_features(net))
        # r<rows>c<cols>e<entries>d<density>l<lits>u<dupshare>
        import re
        assert re.fullmatch(r"r\d+c\d+e\d+d\d+l\d+u\d+", key)

    def test_family_key_separates_very_different_circuits(self, feats):
        big = circuit_features(load_circuit("dalu", scale=0.4))
        assert family_key(big) != family_key(feats)


class TestStrategySelector:
    def test_choose_miss_then_record_then_hit(self, feats):
        sel = StrategySelector()
        assert sel.choose(feats, "latency") is None
        sel.record(feats, "latency", "seq-pingpong", final_lc=42)
        assert sel.choose(feats, "latency") == "seq-pingpong"
        # Classes are independent keys.
        assert sel.choose(feats, "quality") is None
        st = sel.stats()
        assert st["size"] == 1
        assert st["hits"] == 1
        assert st["misses"] == 2
        assert st["records"] == 1
        assert st["persistent"] is False

    def test_forget_drops_the_decision(self, feats):
        sel = StrategySelector()
        sel.record(feats, "latency", "seq-pingpong")
        sel.forget(feats, "latency")
        assert sel.choose(feats, "latency") is None

    def test_decision_key_is_stable_and_class_scoped(self, feats):
        fam = family_key(feats)
        assert decision_key(fam, "latency") == decision_key(fam, "latency")
        assert decision_key(fam, "latency") != decision_key(fam, "quality")


class TestDiskBackedSelector:
    def test_decisions_survive_selector_restart(self, tmp_path, feats):
        cache = DiskCache(tmp_path, schema=SELECTOR_SCHEMA)
        first = StrategySelector(backing=cache)
        first.record(feats, "quality", "seq-exhaustive", final_lc=17)

        fresh = StrategySelector(
            backing=DiskCache(tmp_path, schema=SELECTOR_SCHEMA)
        )
        assert fresh.choose(feats, "quality") == "seq-exhaustive"
        assert fresh.stats()["persistent"] is True

    def test_forget_is_in_memory_only(self, tmp_path, feats):
        cache = DiskCache(tmp_path, schema=SELECTOR_SCHEMA)
        sel = StrategySelector(backing=cache)
        sel.record(feats, "latency", "seq-pingpong")
        sel.forget(feats, "latency")
        # The backing copy survives, so the next choose re-adopts it —
        # forget only protects the current process from a bad decision.
        assert sel.choose(feats, "latency") == "seq-pingpong"


class TestDefaultSelectorPlumbing:
    def test_resolve_selector_conventions(self, monkeypatch):
        monkeypatch.delenv("REPRO_PORTFOLIO_MEMO", raising=False)
        mine = StrategySelector()
        previous = install_default_selector(mine)
        try:
            assert resolve_selector(None) is mine
            assert resolve_selector(False) is None
            other = StrategySelector()
            assert resolve_selector(other) is other
        finally:
            install_default_selector(previous)

    def test_env_toggle_disables_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_PORTFOLIO_MEMO", "0")
        assert not selector_enabled()
        assert default_selector() is None
        assert resolve_selector(None) is None
        monkeypatch.setenv("REPRO_PORTFOLIO_MEMO", "1")
        assert selector_enabled()

    def test_install_returns_previous(self):
        a, b = StrategySelector(), StrategySelector()
        orig = install_default_selector(a)
        try:
            assert install_default_selector(b) is a
        finally:
            install_default_selector(orig)
