"""Differential tests: the bitmask core must replicate the set core exactly.

The contract (see :mod:`repro.rectangles.bitview`) is byte-level
equivalence, not merely same-best: identical (rectangle, gain) streams
in identical order, identical budget consumption at the point of
exhaustion, identical meter charges, and byte-identical factorization
results end to end.  These tests exercise it on seeded random KC
matrices (which hit degenerate shapes the circuit suites may not) and
on the repo's example circuits.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.cube import cube
from repro.circuits.examples import (
    chain_network,
    paper_example_network,
    two_kernel_network,
)
from repro.circuits.mcnc import make_circuit
from repro.machine.costmodel import CostMeter
from repro.rectangles.bitview import (
    BitKCView,
    CORES,
    ENV_VAR,
    default_core,
    resolve_core,
)
from repro.rectangles.cover import kernel_extract
from repro.rectangles.kcmatrix import KCMatrix, build_kc_matrix
from repro.rectangles.pingpong import (
    best_rectangle_pingpong,
    pingpong_candidates,
)
from repro.rectangles.search import (
    BudgetExceeded,
    SearchBudget,
    best_rectangle_exhaustive,
    enumerate_rectangles,
)


def random_kc_matrix(seed: int, n_rows: int = 14, n_cols: int = 10) -> KCMatrix:
    """A random sparse KC matrix over a small literal universe.

    Small universes force label collisions the gain model must handle:
    several rows of one node, and distinct (row, col) cells of one node
    naming the same original cube (the distinct-count correction).
    """
    rng = random.Random(seed)
    mat = KCMatrix()
    col_labels = []
    next_col = [1]

    def col_alloc():
        lab = next_col[0]
        next_col[0] += 1
        return lab

    for _ in range(n_cols):
        c = cube(rng.sample(range(1, 9), rng.randint(1, 3)))
        lab = mat.ensure_col(c, col_alloc)
        if lab not in col_labels:
            col_labels.append(lab)
    for i in range(n_rows):
        node = f"n{rng.randint(0, 3)}"
        cok = cube(rng.sample(range(1, 9), rng.randint(1, 2)))
        row = i + 1
        try:
            mat.add_row(row, node, cok)
        except ValueError:
            continue
        for c in col_labels:
            if rng.random() < 0.45:
                mat.add_entry(row, c)
    return mat


SEEDS = range(12)


class TestStreamEquivalence:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_matrices_identical_stream(self, seed):
        mat = random_kc_matrix(seed)
        stream_set = list(enumerate_rectangles(mat, core="set"))
        stream_bit = list(enumerate_rectangles(mat, core="bit"))
        assert stream_set == stream_bit

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_matrices_nonprime_stream(self, seed):
        mat = random_kc_matrix(seed)
        stream_set = list(enumerate_rectangles(mat, core="set", prime_only=False))
        stream_bit = list(enumerate_rectangles(mat, core="bit", prime_only=False))
        assert stream_set == stream_bit

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_matrices_tie_broken_best(self, seed):
        mat = random_kc_matrix(seed)
        assert best_rectangle_exhaustive(
            mat, core="set"
        ) == best_rectangle_exhaustive(mat, core="bit")

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_matrices_pingpong(self, seed):
        mat = random_kc_matrix(seed)
        assert pingpong_candidates(mat, core="set") == pingpong_candidates(
            mat, core="bit"
        )
        assert best_rectangle_pingpong(
            mat, max_seeds=5, core="set"
        ) == best_rectangle_pingpong(mat, max_seeds=5, core="bit")

    def test_eq1_stream(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        assert list(enumerate_rectangles(mat, core="set")) == list(
            enumerate_rectangles(mat, core="bit")
        )

    def test_mcnc_circuit_stream_and_meter(self):
        mat = build_kc_matrix(make_circuit("misex3", scale=0.1))
        meters = {}
        streams = {}
        for core in CORES:
            meters[core] = CostMeter()
            streams[core] = list(
                enumerate_rectangles(mat, meter=meters[core], core=core)
            )
        assert streams["bit"] == streams["set"]
        assert meters["bit"].counts.get("search_node") == meters["set"].counts.get(
            "search_node"
        )

    def test_mcnc_circuit_pingpong_meter(self):
        mat = build_kc_matrix(make_circuit("dalu", scale=0.2))
        meters = {c: CostMeter() for c in CORES}
        got = {
            c: pingpong_candidates(mat, meter=meters[c], core=c) for c in CORES
        }
        assert got["bit"] == got["set"]
        assert meters["bit"].counts.get("pingpong_round") == meters[
            "set"
        ].counts.get("pingpong_round")


class TestBudgetParity:
    """Both cores must spend the budget at identical tree nodes."""

    def run_core(self, mat, core, max_nodes):
        budget = SearchBudget(max_nodes)
        out = []
        raised = False
        try:
            for rg in enumerate_rectangles(mat, budget=budget, core=core):
                out.append(rg)
        except BudgetExceeded:
            raised = True
        return out, raised, budget.used

    @pytest.mark.parametrize("seed", [0, 3, 7])
    @pytest.mark.parametrize("max_nodes", [1, 5, 17, 60])
    def test_exhaustion_parity(self, seed, max_nodes):
        mat = random_kc_matrix(seed)
        got_set = self.run_core(mat, "set", max_nodes)
        got_bit = self.run_core(mat, "bit", max_nodes)
        assert got_set == got_bit

    def test_mcnc_truncated_prefix(self):
        # seq@0.05 needs ~800 nodes to finish; 300 truncates mid-tree.
        mat = build_kc_matrix(make_circuit("seq", scale=0.05))
        got_set = self.run_core(mat, "set", 300)
        got_bit = self.run_core(mat, "bit", 300)
        assert got_set == got_bit
        assert got_set[1]  # the budget genuinely truncated the search


class TestEndToEnd:
    """Byte-identical factorization on every example circuit."""

    FACTORIES = [paper_example_network, two_kernel_network, chain_network]

    @pytest.mark.parametrize("factory", FACTORIES, ids=lambda f: f.__name__)
    @pytest.mark.parametrize("searcher", ["exhaustive", "pingpong"])
    def test_kernel_extract_identical(self, factory, searcher):
        results = {}
        nets = {}
        for core in CORES:
            net = factory()
            results[core] = kernel_extract(net, searcher=searcher, core=core)
            nets[core] = net
        assert nets["bit"].nodes == nets["set"].nodes
        assert results["bit"].final_lc == results["set"].final_lc
        assert [s.rectangle for s in results["bit"].steps] == [
            s.rectangle for s in results["set"].steps
        ]

    def test_eq1_quality_identical_on_both_cores(self):
        # Eq. 1 starts at LC 33; greedy extraction lands both cores on
        # the same optimized network (LC 21 with this repo's searchers).
        for core in CORES:
            net = paper_example_network()
            kernel_extract(net, searcher="exhaustive", core=core)
            assert net.literal_count() == 21


class TestViewStructure:
    def test_view_matches_matrix(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        view = mat.bitview()
        assert view.num_rows == mat.num_rows
        assert view.num_cols == mat.num_cols
        assert view.num_entries == mat.num_entries
        # Round-trip: every sparse entry appears at its dense position.
        for (r, c), cube_ in mat.entries.items():
            rpos = view.row_pos[r]
            cpos = view.col_pos[c]
            assert view.entry_cubes[view.cells[rpos][cpos]] == cube_
            assert view.row_cols[rpos] >> cpos & 1
            assert view.col_rows[cpos] >> rpos & 1

    def test_view_invalidated_by_mutation(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        view = mat.bitview()
        assert mat.bitview() is view  # cached while untouched
        some_row = next(iter(mat.rows))
        mat.remove_row(some_row)
        view2 = mat.bitview()
        assert view2 is not view
        assert view2.num_rows == mat.num_rows

    def test_value_table_default_cached(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        view = mat.bitview()
        assert view.value_table() is view.value_table()
        custom = view.value_table(lambda node, cube_: 1)
        assert custom == [1] * view.num_entries


class TestCoreSelection:
    def test_default_is_bit(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert default_core() == "bit"
        assert resolve_core(None) == "bit"

    def test_env_var_selects_legacy(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "set")
        assert default_core() == "set"
        assert resolve_core(None) == "set"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "set")
        assert resolve_core("bit") == "bit"

    def test_bad_values_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_core("simd")
        monkeypatch.setenv(ENV_VAR, "numpy")
        with pytest.raises(ValueError):
            default_core()
