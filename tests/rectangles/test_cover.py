import pytest

from repro.machine.costmodel import CostMeter
from repro.network.simulate import exhaustive_equivalence_check, random_equivalence_check
from repro.rectangles.cover import apply_rectangle, kernel_extract, make_searcher
from repro.rectangles.kcmatrix import build_kc_matrix
from repro.rectangles.search import BudgetExceeded, SearchBudget, best_rectangle_exhaustive


class TestApplyRectangle:
    def test_example11_transformation(self, eq1_network):
        """Applying X = a+b to F and G reproduces the paper's 25-literal form."""
        net = eq1_network.copy()
        mat = build_kc_matrix(net)
        rect, gain = best_rectangle_exhaustive(mat)
        applied = apply_rectangle(net, mat, rect, new_name="X", gain=gain)
        assert applied.new_node == "X"
        assert net.literal_count() == 25
        assert applied.actual_delta == 8
        assert set(applied.modified_nodes) == {"F", "G"}
        assert exhaustive_equivalence_check(eq1_network, net, outputs=["F", "G", "H"])

    def test_new_node_holds_kernel(self, eq1_network):
        net = eq1_network.copy()
        mat = build_kc_matrix(net)
        rect, gain = best_rectangle_exhaustive(mat)
        applied = apply_rectangle(net, mat, rect)
        assert net.nodes[applied.new_node] == applied.kernel

    def test_auto_name(self, eq1_network):
        net = eq1_network.copy()
        mat = build_kc_matrix(net)
        rect, _ = best_rectangle_exhaustive(mat)
        applied = apply_rectangle(net, mat, rect)
        assert applied.new_node in net.nodes


class TestKernelExtract:
    def test_eq1_full_extraction(self, eq1_network):
        net = eq1_network.copy()
        res = kernel_extract(net)
        assert res.initial_lc == 33
        assert res.final_lc <= 22  # paper's SIS reaches 22
        assert res.final_lc == net.literal_count()
        assert exhaustive_equivalence_check(
            eq1_network, net, outputs=["F", "G", "H"]
        )

    def test_lc_never_increases_per_step(self, small_circuit):
        net = small_circuit.copy()
        res = kernel_extract(net)
        for step in res.steps:
            assert step.actual_delta == step.gain
            assert step.gain > 0

    def test_improvement_accounting(self, small_circuit):
        net = small_circuit.copy()
        res = kernel_extract(net)
        assert res.improvement == res.initial_lc - res.final_lc
        assert res.improvement == sum(s.actual_delta for s in res.steps)
        assert 0 < res.quality_ratio <= 1

    def test_max_iterations(self, small_circuit):
        net = small_circuit.copy()
        res = kernel_extract(net, max_iterations=2)
        assert res.iterations <= 2

    def test_restricted_nodes(self, eq1_network):
        net = eq1_network.copy()
        res = kernel_extract(net, nodes=["G", "H"])
        # F untouched
        assert net.nodes["F"] == eq1_network.nodes["F"]
        touched = {n for s in res.steps for n in s.modified_nodes}
        assert touched <= {"G", "H"} | {s.new_node for s in res.steps}

    def test_unknown_node_rejected(self, eq1_network):
        with pytest.raises(KeyError):
            kernel_extract(eq1_network.copy(), nodes=["nope"])

    def test_extracted_nodes_are_factorable(self, small_circuit):
        """New nodes join the active set: kernels of kernels get extracted."""
        net = small_circuit.copy()
        res = kernel_extract(net)
        new_nodes = {s.new_node for s in res.steps}
        reused = {
            n for s in res.steps for n in s.modified_nodes if n in new_nodes
        }
        # Not guaranteed for every circuit, but this seed does re-factor.
        assert isinstance(reused, set)

    def test_exhaustive_searcher(self, eq1_network):
        net = eq1_network.copy()
        res = kernel_extract(net, searcher="exhaustive")
        assert res.final_lc <= 22

    def test_exhaustive_at_least_as_good_on_eq1(self, eq1_network):
        n1, n2 = eq1_network.copy(), eq1_network.copy()
        r1 = kernel_extract(n1, searcher="pingpong")
        r2 = kernel_extract(n2, searcher="exhaustive")
        assert r2.final_lc <= r1.final_lc + 2

    def test_budget_propagates(self, small_circuit):
        net = small_circuit.copy()
        with pytest.raises(BudgetExceeded):
            kernel_extract(net, searcher="exhaustive", budget=SearchBudget(2))

    def test_meter_charged(self, eq1_network):
        meter = CostMeter()
        kernel_extract(eq1_network.copy(), meter=meter)
        assert meter.counts["kernel_cube_visit"] > 0
        assert meter.counts["kc_entry"] > 0
        assert meter.counts["divide_node"] > 0

    def test_name_prefix(self, eq1_network):
        net = eq1_network.copy()
        res = kernel_extract(net, name_prefix="[z")
        assert all(s.new_node.startswith("[z") for s in res.steps)

    def test_unknown_searcher_rejected(self):
        with pytest.raises(ValueError):
            make_searcher("magic")

    def test_idempotent_when_converged(self, small_circuit):
        net = small_circuit.copy()
        kernel_extract(net)
        res2 = kernel_extract(net)
        assert res2.iterations == 0

    def test_equivalence_on_generated_circuits(self, small_circuit, small_pla_circuit):
        for ref in (small_circuit, small_pla_circuit):
            net = ref.copy()
            kernel_extract(net)
            assert random_equivalence_check(ref, net, vectors=256, outputs=ref.outputs)
