"""Property-based tests of the extraction loop's invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.circuits.generators import GeneratorSpec, generate_circuit
from repro.network.simulate import random_equivalence_check
from repro.rectangles.cover import kernel_extract
from repro.rectangles.kcmatrix import build_kc_matrix
from repro.rectangles.rectangle import rectangle_gain
from repro.rectangles.search import enumerate_rectangles


def tiny_circuit(seed: int, two_level: bool):
    spec = GeneratorSpec(
        name=f"h{seed}",
        seed=seed,
        n_inputs=8,
        target_lc=80,
        two_level=two_level,
        pool_size=4,
        products_per_node=(1, 3),
    )
    return generate_circuit(spec)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), two_level=st.booleans())
def test_extraction_preserves_function(seed, two_level):
    ref = tiny_circuit(seed, two_level)
    net = ref.copy()
    kernel_extract(net)
    assert random_equivalence_check(ref, net, vectors=128, outputs=ref.outputs)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_lc_monotone_and_gain_exact(seed):
    net = tiny_circuit(seed, False)
    res = kernel_extract(net)
    assert res.final_lc <= res.initial_lc
    assert all(s.actual_delta == s.gain > 0 for s in res.steps)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_every_enumerated_rectangle_is_applicable(seed):
    """Applying ANY enumerated rectangle preserves function and its gain."""
    from repro.rectangles.cover import apply_rectangle

    ref = tiny_circuit(seed, False)
    mat = build_kc_matrix(ref)
    rects = list(enumerate_rectangles(mat))[:5]
    for rect, gain in rects:
        net = ref.copy()
        before = net.literal_count()
        apply_rectangle(net, mat, rect)
        assert before - net.literal_count() == gain
        assert random_equivalence_check(ref, net, vectors=64, outputs=ref.outputs)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_extraction_deterministic(seed):
    a = tiny_circuit(seed, True)
    b = tiny_circuit(seed, True)
    ra = kernel_extract(a)
    rb = kernel_extract(b)
    assert ra.final_lc == rb.final_lc
    assert a.nodes == b.nodes
