import pytest

from repro.machine.costmodel import CostMeter
from repro.network.boolean_network import BooleanNetwork
from repro.network.simulate import exhaustive_equivalence_check, random_equivalence_check
from repro.rectangles.cubeextract import (
    CommonCube,
    apply_common_cube,
    best_common_cube,
    cube_extract,
)


@pytest.fixture
def abc_network():
    """ab appears in four cubes across two nodes — clear common cube."""
    net = BooleanNetwork("cc")
    net.add_inputs(list("abcdef"))
    net.add_node("P", "abc + abd + e")
    net.add_node("Q", "abe + abf")
    net.add_output("P")
    net.add_output("Q")
    return net


class TestBestCommonCube:
    def test_finds_ab(self, abc_network):
        best = best_common_cube(abc_network)
        assert best is not None
        t = abc_network.table
        assert best.cube == tuple(sorted((t.get("a"), t.get("b"))))
        assert len(best.rows) == 4

    def test_gain_formula(self, abc_network):
        best = best_common_cube(abc_network)
        # |R|(|C|-1) - |C| = 4*1 - 2 = 2
        assert best.gain == 2

    def test_none_when_nothing_shared(self):
        net = BooleanNetwork()
        net.add_inputs(list("abcd"))
        net.add_node("f", "ab + cd")
        assert best_common_cube(net) is None

    def test_none_on_single_literal_cubes(self):
        net = BooleanNetwork()
        net.add_inputs(list("ab"))
        net.add_node("f", "a + b")
        assert best_common_cube(net) is None

    def test_restricted_nodes(self, abc_network):
        best = best_common_cube(abc_network, nodes=["Q"])
        assert best is None or all(n == "Q" for n, _ in best.rows)

    def test_deterministic(self, abc_network):
        assert best_common_cube(abc_network) == best_common_cube(abc_network)


class TestApply:
    def test_rewrites_cubes(self, abc_network):
        ref = abc_network.copy()
        best = best_common_cube(abc_network)
        name = apply_common_cube(abc_network, best)
        assert name in abc_network.nodes
        before = ref.literal_count()
        assert before - abc_network.literal_count() == best.gain
        assert exhaustive_equivalence_check(ref, abc_network, outputs=["P", "Q"])

    def test_new_node_is_the_cube(self, abc_network):
        best = best_common_cube(abc_network)
        name = apply_common_cube(abc_network, best)
        assert abc_network.nodes[name] == (best.cube,)


class TestCubeExtractLoop:
    def test_converges_and_preserves_function(self, small_circuit):
        net = small_circuit.copy()
        res = cube_extract(net)
        assert res.final_lc <= res.initial_lc
        assert random_equivalence_check(
            small_circuit, net, vectors=128, outputs=small_circuit.outputs
        )

    def test_idempotent(self, abc_network):
        cube_extract(abc_network)
        res2 = cube_extract(abc_network)
        assert res2.iterations == 0

    def test_max_iterations(self, small_circuit):
        net = small_circuit.copy()
        res = cube_extract(net, max_iterations=1)
        assert res.iterations <= 1

    def test_meter_charged(self, abc_network):
        meter = CostMeter()
        cube_extract(abc_network, meter=meter)
        assert meter.counts.get("pingpong_round", 0) > 0

    def test_extracted_cube_reusable_downstream(self, abc_network):
        res = cube_extract(abc_network)
        assert res.extracted
        x = res.extracted[0]
        fanout = abc_network.fanout_map()
        assert fanout[x]

    def test_combined_with_kernel_extract(self, small_circuit):
        """gkx then gcx (the Table 1 script order) stays correct."""
        from repro.rectangles.cover import kernel_extract

        net = small_circuit.copy()
        kernel_extract(net)
        lc_mid = net.literal_count()
        cube_extract(net)
        assert net.literal_count() <= lc_mid
        assert random_equivalence_check(
            small_circuit, net, vectors=128, outputs=small_circuit.outputs
        )
