import pytest

from repro.machine.costmodel import CostMeter
from repro.rectangles.kcmatrix import (
    KCMatrix,
    LABEL_OFFSET,
    LabelAllocator,
    build_kc_matrix,
)


class TestLabelAllocator:
    def test_processor_zero_starts_at_one(self):
        alloc = LabelAllocator(0)
        assert alloc() == 1
        assert alloc() == 2

    def test_paper_labeling(self):
        """Paper: processor 2's first kernel is 200001, processor 5's 500001."""
        assert LabelAllocator(2)() == 200_001
        assert LabelAllocator(5)() == 500_001

    def test_spaces_disjoint(self):
        a0, a1 = LabelAllocator(0), LabelAllocator(1)
        labels0 = {a0() for _ in range(100)}
        labels1 = {a1() for _ in range(100)}
        assert not labels0 & labels1

    def test_exhaustion(self):
        alloc = LabelAllocator(0, offset=3)
        alloc(), alloc()
        with pytest.raises(OverflowError):
            alloc()

    def test_negative_pid_rejected(self):
        with pytest.raises(ValueError):
            LabelAllocator(-1)


class TestBuild:
    def test_eq1_matrix_shape(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        # F: 7 kernels/cokernels, G: 5, H: 1 (ade+cde has kernel a+c @ de)
        assert mat.num_rows == 13
        assert mat.num_entries == sum(len(mat.by_row[r]) for r in mat.rows)

    def test_rows_are_node_cokernel_pairs(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        pairs = {(info.node, info.cokernel) for info in mat.rows.values()}
        assert len(pairs) == mat.num_rows

    def test_columns_dedupe_kernel_cubes(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        assert len(set(mat.cols.values())) == mat.num_cols

    def test_entry_is_cokernel_union_kernelcube(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        for (r, c), cube in mat.entries.items():
            info = mat.rows[r]
            assert set(cube) == set(info.cokernel) | set(mat.cols[c])

    def test_entries_are_original_cubes(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        for (r, c), cube in mat.entries.items():
            node = mat.rows[r].node
            assert cube in eq1_network.nodes[node]

    def test_node_subset(self, eq1_network):
        mat = build_kc_matrix(eq1_network, nodes=["G", "H"])
        assert {info.node for info in mat.rows.values()} == {"G", "H"}

    def test_pid_offsets_labels(self, eq1_network):
        mat = build_kc_matrix(eq1_network, pid=3)
        assert all(r > 3 * LABEL_OFFSET for r in mat.rows)
        assert all(c > 3 * LABEL_OFFSET for c in mat.cols)

    def test_kernel_cache_filled_and_used(self, eq1_network):
        cache = {}
        m1 = build_kc_matrix(eq1_network, kernel_cache=cache)
        assert set(cache) == {"F", "G", "H"}
        m2 = build_kc_matrix(eq1_network, kernel_cache=cache)
        assert m1.num_rows == m2.num_rows

    def test_meter_charged(self, eq1_network):
        meter = CostMeter()
        build_kc_matrix(eq1_network, meter=meter)
        assert meter.counts["kc_entry"] > 0

    def test_sparsity(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        assert 0 < mat.sparsity() < 1


class TestMutation:
    def test_remove_row_cleans_indexes(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        r = next(iter(mat.rows))
        cols = set(mat.by_row[r])
        mat.remove_row(r)
        assert r not in mat.rows
        for c in cols:
            assert r not in mat.by_col[c]
            assert (r, c) not in mat.entries

    def test_remove_col_cleans_indexes(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        c = next(iter(mat.cols))
        cube = mat.cols[c]
        mat.remove_col(c)
        assert c not in mat.cols
        assert cube not in mat.col_of_cube

    def test_duplicate_row_label_rejected(self):
        mat = KCMatrix()
        mat.add_row(1, "n", ())
        with pytest.raises(ValueError):
            mat.add_row(1, "m", ())


class TestNodeRowsIndex:
    def test_index_matches_row_infos(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        for node, labels in mat.node_rows.items():
            assert labels == {
                r for r, info in mat.rows.items() if info.node == node
            }

    def test_rows_of_node_sorted(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        for node in mat.node_rows:
            got = mat.rows_of_node(node)
            assert got == sorted(got)
            assert set(got) == mat.node_rows[node]

    def test_rows_of_node_unknown_is_empty(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        assert mat.rows_of_node("no-such-node") == []

    def test_remove_row_maintains_index(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        node = next(iter(mat.node_rows))
        for r in list(mat.rows_of_node(node)):
            mat.remove_row(r)
        # Last row removed drops the node key entirely.
        assert node not in mat.node_rows
        assert mat.rows_of_node(node) == []


class TestSubmatrixAndMerge:
    def test_submatrix_columns(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        chosen = sorted(mat.cols)[:3]
        sub = mat.submatrix_columns(chosen)
        assert set(sub.cols) <= set(chosen)
        for (r, c) in sub.entries:
            assert (r, c) in mat.entries

    def test_submatrix_drops_empty_rows(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        sub = mat.submatrix_columns([])
        assert sub.num_rows == 0

    def test_merge_disjoint_label_spaces(self):
        # Hand-built matrices with disjoint cube sets and label spaces —
        # the splice case the L-shaped exchange relies on.
        m0, m1 = KCMatrix(), KCMatrix()
        m0.add_row(1, "F", (9,))
        c0 = m0.ensure_col((0,), lambda: 1)
        m0.add_entry(1, c0)
        m1.add_row(100_001, "G", (8,))
        c1 = m1.ensure_col((2,), lambda: 100_001)
        m1.add_entry(100_001, c1)
        m0.merge(m1)
        assert m0.num_rows == 2
        assert m0.num_cols == 2
        assert m0.num_entries == 2

    def test_merge_shared_column_same_label(self):
        # Same cube under the SAME global label merges fine (the point of
        # the ownership relabeling).
        m0, m1 = KCMatrix(), KCMatrix()
        m0.add_row(1, "F", (9,))
        c0 = m0.ensure_col((0,), lambda: 7)
        m0.add_entry(1, c0)
        m1.add_row(100_001, "G", (8,))
        c1 = m1.ensure_col((0,), lambda: 7)
        m1.add_entry(100_001, c1)
        m0.merge(m1)
        assert m0.num_cols == 1
        assert len(m0.by_col[7]) == 2

    def test_merge_conflicting_cube_label_rejected(self, eq1_network):
        # same cube under two labels must be rejected
        m0 = build_kc_matrix(eq1_network, nodes=["G"], pid=0)
        m1 = build_kc_matrix(eq1_network, nodes=["G"], pid=1)
        with pytest.raises(ValueError):
            m0.merge(m1)
