"""Property tests for the offset labeling and matrix splicing —
the invariants the replicated and L-shaped algorithms depend on."""

from hypothesis import given, settings, strategies as st

from repro.circuits.generators import GeneratorSpec, generate_circuit
from repro.rectangles.kcmatrix import LABEL_OFFSET, build_kc_matrix


def tiny(seed: int):
    return generate_circuit(
        GeneratorSpec(
            name=f"lbl{seed}", seed=seed, n_inputs=8, target_lc=100,
            pool_size=4, products_per_node=(1, 3),
        )
    )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), pid=st.integers(0, 7))
def test_labels_land_in_pid_space(seed, pid):
    net = tiny(seed)
    mat = build_kc_matrix(net, pid=pid)
    lo, hi = pid * LABEL_OFFSET, (pid + 1) * LABEL_OFFSET
    assert all(lo < r < hi for r in mat.rows)
    assert all(lo < c < hi for c in mat.cols)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000))
def test_partitioned_build_matches_whole_build(seed):
    """Building per-partition with disjoint label spaces covers exactly
    the rows/entries of the single global build."""
    net = tiny(seed)
    whole = build_kc_matrix(net)
    names = sorted(net.nodes)
    half = len(names) // 2 or 1
    m0 = build_kc_matrix(net, nodes=names[:half], pid=0)
    m1 = build_kc_matrix(net, nodes=names[half:], pid=1)
    assert m0.num_rows + m1.num_rows == whole.num_rows
    assert m0.num_entries + m1.num_entries == whole.num_entries
    # same (node, cokernel) row identities overall
    whole_rows = {(i.node, i.cokernel) for i in whole.rows.values()}
    part_rows = {(i.node, i.cokernel) for m in (m0, m1) for i in m.rows.values()}
    assert whole_rows == part_rows


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000))
def test_adjacency_indexes_consistent(seed):
    net = tiny(seed)
    mat = build_kc_matrix(net)
    for (r, c) in mat.entries:
        assert c in mat.by_row[r]
        assert r in mat.by_col[c]
    for r, cols in mat.by_row.items():
        for c in cols:
            assert (r, c) in mat.entries
    assert len(set(mat.cols.values())) == mat.num_cols


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000))
def test_entry_identity(seed):
    """entry(i,j) = cokernel_i ∪ kernelcube_j and is an original cube."""
    net = tiny(seed)
    mat = build_kc_matrix(net)
    for (r, c), cube in mat.entries.items():
        info = mat.rows[r]
        assert set(cube) == set(info.cokernel) | set(mat.cols[c])
        assert cube in net.nodes[info.node]
