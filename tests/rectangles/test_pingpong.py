from repro.machine.costmodel import CostMeter
from repro.rectangles.kcmatrix import build_kc_matrix
from repro.rectangles.pingpong import best_rectangle_pingpong
from repro.rectangles.rectangle import rectangle_gain
from repro.rectangles.search import best_rectangle_exhaustive


class TestPingPong:
    def test_finds_the_eq1_best(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        got = best_rectangle_pingpong(mat)
        assert got is not None
        rect, gain = got
        assert gain == 8  # same as exhaustive on this matrix

    def test_result_is_valid_and_gain_consistent(self, small_circuit):
        mat = build_kc_matrix(small_circuit)
        got = best_rectangle_pingpong(mat)
        assert got is not None
        rect, gain = got
        assert rect.is_valid(mat)
        assert gain == rectangle_gain(mat, rect)
        assert len(rect.cols) >= 2

    def test_never_beats_exhaustive(self, eq1_network, small_circuit, small_pla_circuit):
        for net in (eq1_network, small_circuit, small_pla_circuit):
            mat = build_kc_matrix(net)
            heur = best_rectangle_pingpong(mat)
            exact = best_rectangle_exhaustive(mat)
            if exact is None:
                assert heur is None
            else:
                assert heur is not None
                assert heur[1] <= exact[1]

    def test_reasonable_quality_vs_exhaustive(self, small_circuit):
        mat = build_kc_matrix(small_circuit)
        heur = best_rectangle_pingpong(mat)
        exact = best_rectangle_exhaustive(mat)
        assert heur[1] >= 0.5 * exact[1]

    def test_deterministic(self, small_circuit):
        mat = build_kc_matrix(small_circuit)
        assert best_rectangle_pingpong(mat) == best_rectangle_pingpong(mat)

    def test_max_seeds_limits_work(self, small_circuit):
        mat = build_kc_matrix(small_circuit)
        m_all, m_one = CostMeter(), CostMeter()
        best_rectangle_pingpong(mat, meter=m_all)
        best_rectangle_pingpong(mat, max_seeds=1, meter=m_one)
        assert m_one.counts.get("pingpong_round", 0) <= m_all.counts.get(
            "pingpong_round", 1
        )

    def test_none_on_empty_matrix(self):
        from repro.rectangles.kcmatrix import KCMatrix

        assert best_rectangle_pingpong(KCMatrix()) is None

    def test_none_when_no_profit(self):
        from repro.network.boolean_network import BooleanNetwork

        net = BooleanNetwork()
        net.add_inputs(["a", "b"])
        net.add_node("f", "a + b")
        mat = build_kc_matrix(net)
        assert best_rectangle_pingpong(mat) is None

    def test_zero_values_suppress(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        got = best_rectangle_pingpong(mat, value_fn=lambda n, c: 0)
        assert got is None
