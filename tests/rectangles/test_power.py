import pytest

from repro.network.boolean_network import BooleanNetwork
from repro.network.simulate import random_equivalence_check
from repro.rectangles.power import (
    make_activity_value_fn,
    network_switched_capacitance,
    power_kernel_extract,
    signal_probabilities,
    switching_activity,
)


class TestActivityModel:
    def test_uniform_inputs_half(self, eq1_network):
        probs = signal_probabilities(eq1_network, vectors=4096)
        for pi in eq1_network.inputs:
            assert abs(probs[pi] - 0.5) < 0.05

    def test_and_gate_probability(self):
        net = BooleanNetwork()
        net.add_inputs(["a", "b"])
        net.add_node("f", "ab")
        net.add_output("f")
        probs = signal_probabilities(net, vectors=8192)
        assert abs(probs["f"] - 0.25) < 0.05

    def test_activity_peaks_at_half(self):
        assert switching_activity(0.5) == pytest.approx(0.5)
        assert switching_activity(0.0) == 0.0
        assert switching_activity(1.0) == 0.0
        assert switching_activity(0.25) < switching_activity(0.5)

    def test_value_fn_weights_by_activity(self):
        net = BooleanNetwork()
        net.add_inputs(["a", "b"])
        net.add_node("rare", "ab")       # p = 0.25, lower activity
        net.add_node("f", "a + b")
        net.add_output("f")
        net.add_output("rare")
        probs = {"a": 0.5, "b": 0.5, "rare": 0.05, "f": 0.75}
        vf = make_activity_value_fn(net, probs)
        a_id = net.table.get("a")
        b_id = net.table.get("b")
        rare_id = net.table.id_of("rare")
        assert vf("x", (a_id, b_id)) == 2       # two full-activity literals
        assert vf("x", (a_id, rare_id)) < 2     # rare literal worth less

    def test_capacitance_metric_positive(self, eq1_network):
        assert network_switched_capacitance(eq1_network) > 0


class TestPowerExtraction:
    def test_function_preserved(self, small_circuit):
        net = small_circuit.copy()
        power_kernel_extract(net, vectors=512)
        assert random_equivalence_check(
            small_circuit, net, vectors=128, outputs=small_circuit.outputs
        )

    def test_reduces_switched_capacitance(self, small_circuit):
        net = small_circuit.copy()
        probs = signal_probabilities(net, vectors=1024)
        before = network_switched_capacitance(net, probs)
        power_kernel_extract(net, vectors=512)
        probs_after = signal_probabilities(net, vectors=1024)
        after = network_switched_capacitance(net, probs_after)
        assert after < before

    def test_reduces_literals_too(self, small_circuit):
        net = small_circuit.copy()
        res = power_kernel_extract(net, vectors=512)
        assert res.final_lc < res.initial_lc

    def test_deterministic(self, small_circuit):
        a, b = small_circuit.copy(), small_circuit.copy()
        ra = power_kernel_extract(a, vectors=512)
        rb = power_kernel_extract(b, vectors=512)
        assert ra.final_lc == rb.final_lc
        assert a.nodes == b.nodes

    def test_max_iterations(self, small_circuit):
        net = small_circuit.copy()
        res = power_kernel_extract(net, vectors=256, max_iterations=2)
        assert res.iterations <= 2
