import pytest

from repro.rectangles.kcmatrix import build_kc_matrix
from repro.rectangles.rectangle import (
    Rectangle,
    covered_cube_refs,
    default_value,
    rectangle_gain,
    rectangle_kernel,
)


def find_row(mat, node, cokernel_names, table):
    ck = tuple(sorted(table.get(n) for n in cokernel_names))
    for r, info in mat.rows.items():
        if info.node == node and info.cokernel == ck:
            return r
    raise AssertionError(f"no row ({node}, {cokernel_names})")


def find_col(mat, cube_names, table):
    cube = tuple(sorted(table.get(n) for n in cube_names))
    return mat.col_of_cube[cube]


@pytest.fixture
def eq1_matrix(eq1_network):
    return build_kc_matrix(eq1_network), eq1_network.table


class TestRectangle:
    def test_canonical_sorted(self):
        r = Rectangle(rows=(3, 1), cols=(9, 2))
        assert r.rows == (1, 3)
        assert r.cols == (2, 9)

    def test_shape(self):
        assert Rectangle(rows=(1, 2), cols=(3,)).shape == (2, 1)

    def test_is_valid(self, eq1_matrix):
        mat, t = eq1_matrix
        rf = find_row(mat, "F", ["f"], t)
        rg = find_row(mat, "G", ["f"], t)
        ca = find_col(mat, ["a"], t)
        cb = find_col(mat, ["b"], t)
        assert Rectangle(rows=(rf, rg), cols=(ca, cb)).is_valid(mat)

    def test_is_invalid_for_missing_entry(self, eq1_matrix):
        mat, t = eq1_matrix
        rh = find_row(mat, "H", ["d", "e"], t)  # H/de kernel = a + c
        cb = find_col(mat, ["b"], t)
        assert not Rectangle(rows=(rh,), cols=(cb,)).is_valid(mat)


class TestGain:
    def test_example11_gain_is_8(self, eq1_matrix):
        """Extracting X = a + b from F and G saves 8 literals (33 → 25)."""
        mat, t = eq1_matrix
        rows = (
            find_row(mat, "F", ["f"], t),
            find_row(mat, "F", ["d", "e"], t),
            find_row(mat, "G", ["f"], t),
            find_row(mat, "G", ["c", "e"], t),
        )
        cols = (find_col(mat, ["a"], t), find_col(mat, ["b"], t))
        rect = Rectangle(rows=rows, cols=cols)
        assert rect.is_valid(mat)
        assert rectangle_gain(mat, rect) == 8

    def test_gain_against_lc_delta(self, eq1_network):
        """Gain must equal the literal-count drop when applied."""
        from repro.rectangles.cover import apply_rectangle
        from repro.rectangles.search import best_rectangle_exhaustive

        net = eq1_network.copy()
        mat = build_kc_matrix(net)
        rect, gain = best_rectangle_exhaustive(mat)
        before = net.literal_count()
        apply_rectangle(net, mat, rect, gain=gain)
        assert before - net.literal_count() == gain

    def test_zero_value_fn_kills_gain(self, eq1_matrix):
        mat, t = eq1_matrix
        rows = (find_row(mat, "F", ["f"], t), find_row(mat, "G", ["f"], t))
        cols = (find_col(mat, ["a"], t), find_col(mat, ["b"], t))
        rect = Rectangle(rows=rows, cols=cols)
        assert rectangle_gain(mat, rect, value_fn=lambda n, c: 0) < 0

    def test_covered_refs_distinct(self, eq1_matrix):
        mat, t = eq1_matrix
        rows = (find_row(mat, "F", ["f"], t), find_row(mat, "G", ["f"], t))
        cols = (find_col(mat, ["a"], t), find_col(mat, ["b"], t))
        refs = covered_cube_refs(mat, Rectangle(rows=rows, cols=cols))
        assert len(refs) == 4
        assert all(node in ("F", "G") for node, _ in refs)

    def test_rectangle_kernel(self, eq1_matrix):
        mat, t = eq1_matrix
        cols = (find_col(mat, ["a"], t), find_col(mat, ["b"], t))
        kern = rectangle_kernel(mat, Rectangle(rows=(), cols=cols))
        assert kern == tuple(sorted([(t.get("a"),), (t.get("b"),)]))


def test_default_value_is_literal_count():
    assert default_value("n", (1, 2, 3)) == 3
    assert default_value("n", ()) == 0
