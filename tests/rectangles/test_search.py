import pytest

from repro.machine.costmodel import CostMeter
from repro.rectangles.kcmatrix import build_kc_matrix
from repro.rectangles.rectangle import Rectangle, rectangle_gain
from repro.rectangles.search import (
    BudgetExceeded,
    SearchBudget,
    best_rectangle_exhaustive,
    column_stripes,
    enumerate_rectangles,
)


class TestEnumerate:
    def test_all_yields_valid_rectangles(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        found = list(enumerate_rectangles(mat))
        assert found
        for rect, gain in found:
            assert rect.is_valid(mat)
            assert gain == rectangle_gain(mat, rect)
            assert gain > 0
            assert len(rect.cols) >= 2

    def test_min_cols_respected(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        for rect, _ in enumerate_rectangles(mat, min_cols=3):
            assert len(rect.cols) >= 3

    def test_no_duplicate_column_sets(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        seen = [rect.cols for rect, _ in enumerate_rectangles(mat, prime_only=False)]
        assert len(seen) == len(set(seen))

    def test_prime_only_is_subset(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        all_rects = {r.cols for r, _ in enumerate_rectangles(mat, prime_only=False)}
        prime = {r.cols for r, _ in enumerate_rectangles(mat, prime_only=True)}
        assert prime <= all_rects or prime  # prime sets may merge dominated cols

    def test_prime_only_preserves_best_gain(self, eq1_network, small_circuit):
        for net in (eq1_network, small_circuit):
            mat = build_kc_matrix(net)
            full = best_rectangle_exhaustive(mat, prime_only=False) if False else None
            best_p = max(
                (g for _, g in enumerate_rectangles(mat, prime_only=True)),
                default=None,
            )
            best_a = max(
                (g for _, g in enumerate_rectangles(mat, prime_only=False)),
                default=None,
            )
            assert best_p == best_a


class TestBestExhaustive:
    def test_eq1_best_gain_is_8(self, eq1_network):
        """The max-gain rectangle of Eq. 1's matrix is X = a+b (gain 8)."""
        mat = build_kc_matrix(eq1_network)
        rect, gain = best_rectangle_exhaustive(mat)
        assert gain == 8
        kernel_cubes = {mat.cols[c] for c in rect.cols}
        t = eq1_network.table
        assert kernel_cubes == {(t.get("a"),), (t.get("b"),)}

    def test_deterministic(self, small_circuit):
        mat = build_kc_matrix(small_circuit)
        assert best_rectangle_exhaustive(mat) == best_rectangle_exhaustive(mat)

    def test_none_when_no_gain(self):
        from repro.network.boolean_network import BooleanNetwork

        net = BooleanNetwork()
        net.add_inputs(["a", "b"])
        net.add_node("f", "a + b")
        mat = build_kc_matrix(net)
        assert best_rectangle_exhaustive(mat) is None

    def test_meter_charged(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        meter = CostMeter()
        best_rectangle_exhaustive(mat, meter=meter)
        assert meter.counts["search_node"] > 0


class TestBudget:
    def test_budget_exceeded_raises(self, small_circuit):
        mat = build_kc_matrix(small_circuit)
        with pytest.raises(BudgetExceeded):
            best_rectangle_exhaustive(mat, budget=SearchBudget(3))

    def test_budget_accumulates(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        b = SearchBudget(10**9)
        best_rectangle_exhaustive(mat, budget=b)
        used_once = b.used
        best_rectangle_exhaustive(mat, budget=b)
        assert b.used == 2 * used_once


class TestStripes:
    def test_stripes_partition_columns(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        stripes = column_stripes(mat, 3)
        union = set().union(*stripes)
        assert union == set(mat.cols)
        for i in range(3):
            for j in range(i + 1, 3):
                assert not stripes[i] & stripes[j]

    def test_stripes_cover_search_space(self, eq1_network):
        """Union of per-stripe bests must equal the global best (Fig. 1)."""
        mat = build_kc_matrix(eq1_network)
        global_best = best_rectangle_exhaustive(mat)
        for n in (2, 3, 4):
            stripes = column_stripes(mat, n)
            candidates = []
            for s in stripes:
                got = best_rectangle_exhaustive(
                    mat, anchor_filter=lambda c, s=s: c in s
                )
                if got:
                    candidates.append(got)
            assert max(g for _, g in candidates) == global_best[1]

    def test_more_stripes_than_columns(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        stripes = column_stripes(mat, mat.num_cols + 5)
        assert sum(len(s) for s in stripes) == mat.num_cols
