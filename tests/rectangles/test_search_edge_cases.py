"""Edge cases for the exhaustive search and stripe decomposition."""

import pytest

from repro.network.boolean_network import BooleanNetwork
from repro.rectangles.kcmatrix import KCMatrix, build_kc_matrix
from repro.rectangles.search import (
    SearchBudget,
    best_rectangle_exhaustive,
    column_stripes,
    enumerate_rectangles,
)


class TestDegenerateMatrices:
    def test_empty_matrix(self):
        assert best_rectangle_exhaustive(KCMatrix()) is None

    def test_single_node_no_sharing(self):
        net = BooleanNetwork()
        net.add_inputs(list("abcd"))
        net.add_node("f", "ab + cd")
        mat = build_kc_matrix(net)
        assert best_rectangle_exhaustive(mat) is None

    def test_self_factoring_found(self):
        # acd + bcd: the single-row rectangle (a+b)@cd has gain 1
        net = BooleanNetwork()
        net.add_inputs(list("abcd"))
        net.add_node("f", "acd + bcd")
        mat = build_kc_matrix(net)
        got = best_rectangle_exhaustive(mat)
        assert got is not None and got[1] == 1

    def test_column_stripes_empty_matrix(self):
        stripes = column_stripes(KCMatrix(), 3)
        assert stripes == [set(), set(), set()]


class TestPrimeOnlyFlag:
    def test_non_prime_superset(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        prime = list(enumerate_rectangles(mat, prime_only=True))
        full = list(enumerate_rectangles(mat, prime_only=False))
        assert len(prime) <= len(full)
        assert max(g for _, g in prime) == max(g for _, g in full)

    def test_prime_only_false_with_zero_values(self, eq1_network):
        """With non-monotone values prime_only=False is the safe mode."""
        mat = build_kc_matrix(eq1_network)
        t = eq1_network.table
        dead_cube = tuple(sorted([t.get("a"), t.get("f")]))

        def vf(node, cube):
            return 0 if cube == dead_cube else len(cube)

        full = list(enumerate_rectangles(mat, value_fn=vf, prime_only=False))
        for rect, gain in full:
            assert gain > 0


class TestBudgetSemantics:
    def test_budget_zero_blows_immediately(self, eq1_network):
        from repro.rectangles.search import BudgetExceeded

        mat = build_kc_matrix(eq1_network)
        with pytest.raises(BudgetExceeded):
            best_rectangle_exhaustive(mat, budget=SearchBudget(0))

    def test_budget_reports_usage(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        b = SearchBudget(10**9)
        best_rectangle_exhaustive(mat, budget=b)
        assert 0 < b.used < 10**6


class TestAnchorSemantics:
    def test_single_column_anchor(self, eq1_network):
        """Anchoring on one column yields only rectangles containing it
        as their leftmost column."""
        mat = build_kc_matrix(eq1_network)
        c0 = sorted(mat.cols)[0]
        for rect, _ in enumerate_rectangles(mat, anchor_filter=lambda c: c == c0):
            assert rect.cols[0] == c0

    def test_anchor_filter_false_everywhere(self, eq1_network):
        mat = build_kc_matrix(eq1_network)
        assert best_rectangle_exhaustive(mat, anchor_filter=lambda c: False) is None
