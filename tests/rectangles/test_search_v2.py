"""Differential tests for the v2 pruned search and the canonical memo.

The v2 exhaustive core (branch-and-bound with an admissible
remaining-gain bound plus column-dominance reduction; see the "Search
pruning & memoization" section of docs/algorithms.md) must return the
*identical* best rectangle — value and identity, including lexicographic
tie-breaks — as the unpruned v1 stream on every matrix, on both cores,
with both cores spending budgets identically.  The cross-job memo must
be budget/meter-exact on hits, invalidate itself across matrix version
bumps, and persist through a DiskCache backing.
"""

from __future__ import annotations

import pytest

from repro.algebra.cube import cube
from repro.circuits.mcnc import make_circuit
from repro.machine.costmodel import CostMeter
from repro.rectangles.kcmatrix import KCMatrix, build_kc_matrix
from repro.rectangles.memo import (
    GLOBAL_SEARCH_STATS,
    RectMemo,
    default_memo,
    install_default_memo,
    memo_enabled,
    memo_key,
    rect_search_snapshot,
)
from repro.rectangles.search import (
    BudgetExceeded,
    SearchBudget,
    best_rectangle_exhaustive,
    prune_enabled,
    resolve_prune,
)
from repro.serve.diskcache import DiskCache
from tests.rectangles.test_bitview_equivalence import random_kc_matrix

CORES = ("set", "bit")
SEEDS = range(10)


def dup_rows_matrix(seed: int) -> KCMatrix:
    """A random matrix with duplicated row supports (the fuzz suite's
    ``dup_rows`` shape): duplicate rows create tied rectangles and
    subset columns, the exact territory of dominance pruning."""
    import random

    mat = random_kc_matrix(seed)
    rng = random.Random(seed + 1000)
    rows = sorted(mat.rows)
    next_row = max(rows) + 1
    for r in rows[: len(rows) // 2]:
        node = mat.rows[r].node
        cok = cube(rng.sample(range(1, 9), rng.randint(1, 2)))
        mat.add_row(next_row, node, cok)
        for c in sorted(mat.by_row[r]):
            mat.add_entry(next_row, c)
        next_row += 1
    return mat


@pytest.fixture
def no_default_memo():
    """Isolate a test from the process-default memo."""
    previous = install_default_memo(None)
    yield
    install_default_memo(previous)


class TestPrunedEqualsUnpruned:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("core", CORES)
    def test_random_matrices(self, seed, core):
        mat = random_kc_matrix(seed)
        assert best_rectangle_exhaustive(
            mat, core=core, prune=True, memo=False
        ) == best_rectangle_exhaustive(mat, core=core, prune=False)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("core", CORES)
    def test_dup_rows_matrices(self, seed, core):
        mat = dup_rows_matrix(seed)
        assert best_rectangle_exhaustive(
            mat, core=core, prune=True, memo=False
        ) == best_rectangle_exhaustive(mat, core=core, prune=False)

    @pytest.mark.parametrize("core", CORES)
    def test_mcnc_circuit(self, core):
        mat = build_kc_matrix(make_circuit("misex3", scale=0.1))
        assert best_rectangle_exhaustive(
            mat, core=core, prune=True, memo=False
        ) == best_rectangle_exhaustive(mat, core=core, prune=False)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_cross_core_v2_parity(self, seed):
        mat = dup_rows_matrix(seed)
        got = {}
        for core in CORES:
            meter = CostMeter()
            got[core] = (
                best_rectangle_exhaustive(
                    mat, core=core, prune=True, memo=False, meter=meter
                ),
                meter.counts.get("search_node"),
            )
        assert got["set"] == got["bit"]

    def test_custom_value_fn_falls_back_to_v1(self):
        # v2's bound/dominance proofs only hold for the default value
        # function; a custom one must take the (correct) v1 path.
        mat = random_kc_matrix(0)
        custom = lambda node, c: 1  # noqa: E731
        assert best_rectangle_exhaustive(
            mat, value_fn=custom, prune=True, memo=False
        ) == best_rectangle_exhaustive(mat, value_fn=custom, prune=False)


class TestBudgetParity:
    """Both v2 cores spend the budget at identical tree nodes."""

    def run_core(self, mat, core, max_nodes):
        budget = SearchBudget(max_nodes)
        try:
            res = best_rectangle_exhaustive(
                mat, core=core, prune=True, memo=False, budget=budget
            )
            return ("done", res, budget.used)
        except BudgetExceeded:
            return ("dnf", None, budget.used)

    @pytest.mark.parametrize("seed", [0, 3, 7])
    @pytest.mark.parametrize("max_nodes", [1, 5, 17, 60])
    def test_exhaustion_parity(self, seed, max_nodes):
        mat = dup_rows_matrix(seed)
        assert self.run_core(mat, "set", max_nodes) == self.run_core(
            mat, "bit", max_nodes
        )

    def test_v2_never_spends_more_than_v1(self):
        for seed in SEEDS:
            mat = dup_rows_matrix(seed)
            spent = {}
            for prune in (False, True):
                budget = SearchBudget(10**9)
                best_rectangle_exhaustive(
                    mat, prune=prune, memo=False, budget=budget
                )
                spent[prune] = budget.used
            assert spent[True] <= spent[False]


class TestMemo:
    def test_hit_returns_identical_result(self):
        mat = build_kc_matrix(make_circuit("misex3", scale=0.1))
        memo = RectMemo()
        first = best_rectangle_exhaustive(mat, memo=memo)
        mat._touch()  # drop the cached view: force a re-lookup
        second = best_rectangle_exhaustive(mat, memo=memo)
        assert first == second
        stats = memo.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert len(memo) == 1

    def test_hit_across_label_renaming(self):
        # Entries are stored in dense position space: a structurally
        # identical matrix with different row labels must hit and decode
        # to its *own* labels.
        def build(offset):
            base = random_kc_matrix(5)
            mat = KCMatrix()
            for c in sorted(base.cols):
                mat.ensure_col(base.cols[c], lambda c=c: c)
            for r in sorted(base.rows):
                info = base.rows[r]
                mat.add_row(r + offset, info.node, info.cokernel)
                for c in sorted(base.by_row[r]):
                    mat.add_entry(r + offset, c)
            return mat

        memo = RectMemo()
        res0 = best_rectangle_exhaustive(build(0), memo=memo)
        res9 = best_rectangle_exhaustive(build(900), memo=memo)
        assert memo.stats()["hits"] == 1
        assert res0 is not None and res9 is not None
        rect0, gain0 = res0
        rect9, gain9 = res9
        assert gain9 == gain0
        assert rect9.cols == rect0.cols
        assert list(rect9.rows) == [r + 900 for r in rect0.rows]

    def test_version_bump_invalidates(self):
        mat = random_kc_matrix(3)
        memo = RectMemo()
        best_rectangle_exhaustive(mat, memo=memo)
        victim = max(mat.rows)
        mat.remove_row(victim)  # bumps the matrix version
        res = best_rectangle_exhaustive(mat, memo=memo)
        stats = memo.stats()
        assert stats["misses"] == 2 and stats["hits"] == 0
        assert res == best_rectangle_exhaustive(mat, prune=False)

    def test_hit_is_budget_and_meter_exact(self):
        mat = build_kc_matrix(make_circuit("misex3", scale=0.1))
        live_meter = CostMeter()
        live = best_rectangle_exhaustive(
            mat, memo=False, prune=True, meter=live_meter
        )
        nodes = int(live_meter.counts["search_node"])

        memo = RectMemo()
        best_rectangle_exhaustive(mat, memo=memo)
        # Exact-cap budget: the lump replay completes with used == nodes.
        mat._touch()
        budget = SearchBudget(nodes)
        hit_meter = CostMeter()
        hit = best_rectangle_exhaustive(
            mat, memo=memo, budget=budget, meter=hit_meter
        )
        assert hit == live
        assert budget.used == nodes
        assert hit_meter.counts["search_node"] == live_meter.counts[
            "search_node"
        ]
        # One node short: the hit raises exactly like a live run would.
        mat._touch()
        with pytest.raises(BudgetExceeded):
            best_rectangle_exhaustive(
                mat, memo=memo, budget=SearchBudget(nodes - 1)
            )

    def test_incomplete_search_not_stored(self):
        mat = build_kc_matrix(make_circuit("misex3", scale=0.1))
        memo = RectMemo()
        with pytest.raises(BudgetExceeded):
            best_rectangle_exhaustive(mat, memo=memo, budget=SearchBudget(3))
        assert len(memo) == 0

    def test_diskcache_backing_persists_across_memos(self, tmp_path):
        mat = random_kc_matrix(7)
        memo1 = RectMemo(backing=DiskCache(str(tmp_path)))
        first = best_rectangle_exhaustive(mat, memo=memo1)
        # A fresh memo (fresh process, same cache dir) hits via backing.
        memo2 = RectMemo(backing=DiskCache(str(tmp_path)))
        second = best_rectangle_exhaustive(mat, memo=memo2)
        assert first == second
        assert memo2.stats()["hits"] == 1 and memo2.stats()["misses"] == 0

    def test_lru_eviction_counted(self):
        memo = RectMemo(capacity=1)
        mats = [random_kc_matrix(s) for s in (11, 12)]
        for mat in mats:
            best_rectangle_exhaustive(mat, memo=memo)
        assert memo.stats()["evictions"] == 1
        best_rectangle_exhaustive(mats[0], memo=memo)  # evicted: a miss
        assert memo.stats()["misses"] == 3

    def test_memo_key_depends_on_parameters(self):
        sig = "abc"
        keys = {
            memo_key(sig, 2),
            memo_key(sig, 3),
            memo_key(sig, 2, prime_only=False),
            memo_key("abd", 2),
        }
        assert len(keys) == 4


class TestDefaultsAndCounters:
    def test_prune_env_gate(self, monkeypatch):
        monkeypatch.delenv("REPRO_RECT_PRUNE", raising=False)
        assert prune_enabled() and resolve_prune(None)
        monkeypatch.setenv("REPRO_RECT_PRUNE", "0")
        assert not prune_enabled() and not resolve_prune(None)
        assert resolve_prune(True)

    def test_memo_env_gate(self, monkeypatch, no_default_memo):
        monkeypatch.setenv("REPRO_RECT_MEMO", "0")
        assert not memo_enabled()
        assert default_memo() is None
        monkeypatch.setenv("REPRO_RECT_MEMO", "1")
        assert memo_enabled()
        assert default_memo() is not None

    def test_global_stats_and_snapshot(self, no_default_memo):
        before = GLOBAL_SEARCH_STATS.snapshot()
        mat = build_kc_matrix(make_circuit("misex3", scale=0.1))
        best_rectangle_exhaustive(mat, memo=False, prune=True)
        after = GLOBAL_SEARCH_STATS.snapshot()
        assert after["searches"] == before["searches"] + 1
        assert after["pruned_subtrees"] >= before["pruned_subtrees"]
        snap = rect_search_snapshot()
        assert set(snap) == {
            "rect_search_pruned_subtrees",
            "rect_search_dominance_skips",
            "rect_memo_hits",
            "rect_memo_misses",
            "rect_memo_evictions",
        }

    def test_traced_memo_hit_attaches_counters(self):
        from repro import obs

        mat = build_kc_matrix(make_circuit("misex3", scale=0.1))
        memo = RectMemo()
        best_rectangle_exhaustive(mat, memo=memo)
        mat._touch()
        tracer = obs.Tracer(name="memo-hit")
        with obs.use_tracer(tracer), obs.span("memo-hit"):
            best_rectangle_exhaustive(mat, memo=memo)
        totals = tracer.counter_totals()
        assert totals.get("rect_memo_hits") == 1
        # The hit replays the recorded node spend into the span too, so
        # traced accounting matches the meter/budget replay.
        assert totals.get("search_node_visit", 0) > 0
