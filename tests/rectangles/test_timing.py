import pytest

from repro.network.simulate import random_equivalence_check
from repro.rectangles.cover import kernel_extract
from repro.rectangles.timing import (
    critical_depth,
    node_levels,
    predicted_depth_after,
    timing_kernel_extract,
)


class TestLevels:
    def test_two_level_network(self, eq1_network):
        levels = node_levels(eq1_network)
        assert levels["a"] == 0
        assert levels["F"] == 1
        assert critical_depth(eq1_network) == 1

    def test_extraction_adds_levels(self, eq1_network):
        net = eq1_network.copy()
        kernel_extract(net)
        assert critical_depth(net) > 1

    def test_chain(self):
        from repro.circuits.examples import chain_network

        assert critical_depth(chain_network(4)) == 4


class TestPrediction:
    def test_prediction_matches_reality(self, eq1_network):
        from repro.rectangles.cover import apply_rectangle
        from repro.rectangles.kcmatrix import build_kc_matrix
        from repro.rectangles.search import best_rectangle_exhaustive

        net = eq1_network.copy()
        mat = build_kc_matrix(net)
        rect, _ = best_rectangle_exhaustive(mat)
        predicted = predicted_depth_after(net, mat, rect, node_levels(net))
        apply_rectangle(net, mat, rect)
        assert critical_depth(net) == predicted

    def test_prediction_is_conservative_downstream(self, small_circuit):
        from repro.rectangles.cover import apply_rectangle
        from repro.rectangles.kcmatrix import build_kc_matrix
        from repro.rectangles.pingpong import best_rectangle_pingpong

        net = small_circuit.copy()
        mat = build_kc_matrix(net)
        got = best_rectangle_pingpong(mat)
        assert got is not None
        predicted = predicted_depth_after(net, mat, got[0], node_levels(net))
        apply_rectangle(net, mat, got[0])
        assert critical_depth(net) <= predicted


class TestTimingExtraction:
    def test_unbounded_equals_area_driven_quality(self, eq1_network):
        a = eq1_network.copy()
        b = eq1_network.copy()
        kernel_extract(a)
        res = timing_kernel_extract(b, max_depth=None)
        assert abs(res.final_lc - a.literal_count()) <= 2

    def test_budget_respected(self, small_circuit):
        base = critical_depth(small_circuit)
        for budget in (base, base + 1, base + 2):
            net = small_circuit.copy()
            timing_kernel_extract(net, max_depth=budget)
            assert critical_depth(net) <= budget

    def test_depth_area_tradeoff(self, small_circuit):
        """Tighter depth budgets can only cost literals, never save them."""
        base = critical_depth(small_circuit)
        lcs = []
        for budget in (base, base + 2, None):
            net = small_circuit.copy()
            res = timing_kernel_extract(net, max_depth=budget)
            lcs.append(res.final_lc)
        assert lcs[0] >= lcs[2]

    def test_function_preserved(self, small_circuit):
        net = small_circuit.copy()
        timing_kernel_extract(net, max_depth=critical_depth(net) + 1)
        assert random_equivalence_check(
            small_circuit, net, vectors=128, outputs=small_circuit.outputs
        )

    def test_infeasible_budget_rejected(self, small_circuit):
        from repro.rectangles.timing import critical_depth as depth

        too_small = depth(small_circuit) - 1
        if too_small >= 1:
            with pytest.raises(ValueError):
                timing_kernel_extract(small_circuit.copy(), max_depth=too_small)

    def test_depth_one_budget_blocks_everything(self, eq1_network):
        net = eq1_network.copy()
        res = timing_kernel_extract(net, max_depth=1)
        assert res.iterations == 0
        assert net.literal_count() == 33
