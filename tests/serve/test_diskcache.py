"""DiskCache: persistence, schema versioning, concurrent-writer safety."""

import json
import threading

import pytest

from repro.serve.diskcache import CACHE_SCHEMA, DiskCache

KEY = "ab" + "0" * 62  # a plausible 64-hex-char digest
DOC = {"final_lc": 21, "status": "done"}


def test_roundtrip(tmp_path):
    cache = DiskCache(tmp_path)
    assert cache.get(KEY) is None
    cache.put(KEY, DOC)
    assert cache.get(KEY) == DOC
    assert KEY in cache
    assert len(cache) == 1


def test_entries_survive_restart(tmp_path):
    DiskCache(tmp_path).put(KEY, DOC)
    warm = DiskCache(tmp_path)
    assert warm.stats()["warm_entries"] == 1
    assert warm.get(KEY) == DOC


def test_sibling_writes_visible_without_restart(tmp_path):
    # Both instances exist before the write: reader's warm index is
    # empty, so only the disk probe can find the sibling's entry.
    reader = DiskCache(tmp_path)
    writer = DiskCache(tmp_path)
    writer.put(KEY, DOC)
    assert reader.get(KEY) == DOC


def test_schema_bump_starts_cold(tmp_path):
    DiskCache(tmp_path, schema="repro-servecache/1").put(KEY, DOC)
    v2 = DiskCache(tmp_path, schema="repro-servecache/2")
    assert v2.get(KEY) is None
    assert v2.stats()["warm_entries"] == 0
    # and the old namespace is untouched
    assert DiskCache(tmp_path, schema="repro-servecache/1").get(KEY) == DOC


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put(KEY, DOC)
    cache._path(KEY).write_text("{ not json")
    assert cache.get(KEY) is None
    assert cache.stats()["corrupt"] == 1


def test_wrong_envelope_is_a_miss(tmp_path):
    cache = DiskCache(tmp_path)
    path = cache._path(KEY)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"schema": "other/9", "key": KEY, "doc": DOC}))
    assert cache.get(KEY) is None
    assert cache.stats()["corrupt"] == 1


def test_stats_shape_and_hit_rate(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put(KEY, DOC)
    cache.get(KEY)
    cache.get("cd" + "0" * 62)
    stats = cache.stats()
    for field in ("schema", "dir", "size", "warm_entries", "hits",
                  "misses", "writes", "corrupt", "hit_rate"):
        assert field in stats
    assert stats["schema"] == CACHE_SCHEMA
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["writes"] == 1
    assert stats["hit_rate"] == pytest.approx(0.5)


def test_concurrent_writers_same_key(tmp_path):
    cache = DiskCache(tmp_path)
    errors = []

    def write(n):
        try:
            for _ in range(20):
                cache.put(KEY, DOC)
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(exc)

    threads = [threading.Thread(target=write, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert cache.get(KEY) == DOC
    # no temp files left behind by the rename dance
    leftovers = [p for p in cache.objects.rglob("*") if p.suffix == ".tmp"]
    assert not leftovers
