"""DiskCache: persistence, schema versioning, concurrent-writer safety."""

import json
import threading

import pytest

from repro.serve.diskcache import CACHE_SCHEMA, DiskCache

KEY = "ab" + "0" * 62  # a plausible 64-hex-char digest
DOC = {"final_lc": 21, "status": "done"}


def test_roundtrip(tmp_path):
    cache = DiskCache(tmp_path)
    assert cache.get(KEY) is None
    cache.put(KEY, DOC)
    assert cache.get(KEY) == DOC
    assert KEY in cache
    assert len(cache) == 1


def test_entries_survive_restart(tmp_path):
    DiskCache(tmp_path).put(KEY, DOC)
    warm = DiskCache(tmp_path)
    assert warm.stats()["warm_entries"] == 1
    assert warm.get(KEY) == DOC


def test_sibling_writes_visible_without_restart(tmp_path):
    # Both instances exist before the write: reader's warm index is
    # empty, so only the disk probe can find the sibling's entry.
    reader = DiskCache(tmp_path)
    writer = DiskCache(tmp_path)
    writer.put(KEY, DOC)
    assert reader.get(KEY) == DOC


def test_schema_bump_starts_cold(tmp_path):
    DiskCache(tmp_path, schema="repro-servecache/1").put(KEY, DOC)
    v2 = DiskCache(tmp_path, schema="repro-servecache/2")
    assert v2.get(KEY) is None
    assert v2.stats()["warm_entries"] == 0
    # and the old namespace is untouched
    assert DiskCache(tmp_path, schema="repro-servecache/1").get(KEY) == DOC


def test_corrupt_entry_is_a_miss(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put(KEY, DOC)
    cache._path(KEY).write_text("{ not json")
    assert cache.get(KEY) is None
    assert cache.stats()["corrupt"] == 1


def test_wrong_envelope_is_a_miss(tmp_path):
    cache = DiskCache(tmp_path)
    path = cache._path(KEY)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"schema": "other/9", "key": KEY, "doc": DOC}))
    assert cache.get(KEY) is None
    assert cache.stats()["corrupt"] == 1


def test_stats_shape_and_hit_rate(tmp_path):
    cache = DiskCache(tmp_path)
    cache.put(KEY, DOC)
    cache.get(KEY)
    cache.get("cd" + "0" * 62)
    stats = cache.stats()
    for field in ("schema", "dir", "size", "warm_entries", "hits",
                  "misses", "writes", "corrupt", "hit_rate"):
        assert field in stats
    assert stats["schema"] == CACHE_SCHEMA
    assert stats["hits"] == 1 and stats["misses"] == 1
    assert stats["writes"] == 1
    assert stats["hit_rate"] == pytest.approx(0.5)


def _keys(n):
    return [f"{i:02x}" + "0" * 62 for i in range(n)]


def test_byte_budget_evicts_lru(tmp_path):
    cache = DiskCache(tmp_path, max_bytes=400)
    for key in _keys(8):
        cache.put(key, DOC)
    stats = cache.stats()
    assert stats["bytes"] <= 400
    assert stats["evictions"] > 0
    # The most recently written keys survive; the oldest are gone.
    survivors = [k for k in _keys(8) if cache.get(k) is not None]
    assert survivors == _keys(8)[-len(survivors):]
    assert len(survivors) >= 1


def test_get_refreshes_lru_order(tmp_path):
    keys = _keys(6)
    cache = DiskCache(tmp_path, max_bytes=10_000)
    for key in keys:
        cache.put(key, DOC)
    cache.get(keys[0])  # refresh the oldest
    entry_size = cache.stats()["bytes"] // 6
    cache.max_bytes = int(entry_size * 2.5)  # room for two entries
    cache.put(keys[0], DOC)  # triggers eviction down to budget
    assert cache.get(keys[0]) is not None
    assert cache.get(keys[1]) is None  # stale-LRU entry was the victim


def test_budget_enforced_on_warm_scan(tmp_path):
    unbounded = DiskCache(tmp_path)
    for key in _keys(8):
        unbounded.put(key, DOC)
    total = unbounded.stats()["bytes"]
    warm = DiskCache(tmp_path, max_bytes=total // 2)
    assert warm.stats()["bytes"] <= total // 2
    assert warm.stats()["evictions"] > 0


def test_disk_full_degrades_to_memory_overlay(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_FAULTS", "disk-full@PUT-1")
    cache = DiskCache(tmp_path)
    keys = _keys(3)
    cache.put(keys[0], DOC)  # put #1 still lands on disk
    cache.put(keys[1], DOC)  # put #2 hits injected ENOSPC — must not raise
    stats = cache.stats()
    assert stats["write_errors"] == 1
    assert stats["degraded"] is True
    assert stats["mem_entries"] == 1
    # Both entries are still servable: one from disk, one from memory.
    assert cache.get(keys[0]) == DOC
    assert cache.get(keys[1]) == DOC
    # The overlay never persisted anything.
    assert not cache._path(keys[1]).exists()


def test_degraded_clears_on_next_successful_write(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_FAULTS", "disk-full@PUT-1")
    cache = DiskCache(tmp_path)
    keys = _keys(3)
    cache.put(keys[0], DOC)
    cache.put(keys[1], DOC)
    assert cache.stats()["degraded"] is True
    cache._fault_put_from = None  # the volume comes back
    cache.put(keys[2], DOC)
    stats = cache.stats()
    assert stats["degraded"] is False
    assert cache.get(keys[2]) == DOC


def test_real_oserror_never_propagates(tmp_path, monkeypatch):
    cache = DiskCache(tmp_path)

    def boom(*args, **kwargs):
        raise OSError(28, "No space left on device")

    monkeypatch.setattr("tempfile.mkstemp", boom)
    cache.put(KEY, DOC)  # must not raise
    assert cache.stats()["write_errors"] == 1
    assert cache.get(KEY) == DOC  # served from the overlay


def test_overlay_is_bounded(tmp_path, monkeypatch):
    from repro.serve import diskcache as mod

    monkeypatch.setenv("REPRO_SERVE_FAULTS", "disk-full@PUT-0")
    monkeypatch.setattr(mod, "_MEM_OVERLAY_CAP", 4)
    cache = DiskCache(tmp_path)
    for i in range(10):
        cache.put(f"{i:02x}" + "1" * 62, DOC)
    assert cache.stats()["mem_entries"] <= 4


def test_concurrent_writers_same_key(tmp_path):
    cache = DiskCache(tmp_path)
    errors = []

    def write(n):
        try:
            for _ in range(20):
                cache.put(KEY, DOC)
        except Exception as exc:  # pragma: no cover - the assertion
            errors.append(exc)

    threads = [threading.Thread(target=write, args=(i,)) for i in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert cache.get(KEY) == DOC
    # no temp files left behind by the rename dance
    leftovers = [p for p in cache.objects.rglob("*") if p.suffix == ".tmp"]
    assert not leftovers
