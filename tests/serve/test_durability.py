"""JobJournal + fsck + gateway replay: the WAL that makes 202s durable.

The unit half exercises the journal mechanics directly (append/replay,
torn-tail tolerance, rotation, compaction, fsck repair).  The e2e half
boots real gateways on a shared cache dir and proves the restart
contract: accepted-but-unfinished jobs are re-admitted, finished jobs
stay fetchable, and a fresh identical request coalesces with (never
duplicates) a replayed one.  pytest-asyncio is not available, so async
bodies run under ``asyncio.run``.
"""

import asyncio
import json

from repro.serve import Gateway, GatewayConfig
from repro.serve.bench import _probe_circuit_eqn
from repro.serve.durability import (
    JOURNAL_SCHEMA,
    JobJournal,
    fsck_scan,
    render_fsck_report,
)
from repro.serve.diskcache import DiskCache
from repro.serve.httpio import http_json, http_json_lines

KEY = "0" * 64


def _accept(journal, n, body=None, tenant="t0"):
    journal.append("accepted", f"j{n:06d}", seq=n, key=KEY,
                   tenant=tenant, body=body or {"circuit": "example"})


# ----------------------------------------------------------------------
# journal mechanics
# ----------------------------------------------------------------------


def test_append_replay_roundtrip(tmp_path):
    journal = JobJournal(tmp_path)
    _accept(journal, 0)
    journal.append("dispatched", "j000000", worker=1)
    journal.append("done", "j000000", status="done")
    _accept(journal, 1)
    journal.append("done", "j000001", status="failed")
    _accept(journal, 2)
    journal.close()

    replay = JobJournal(tmp_path).replay()
    assert [r["job_id"] for r in replay.unfinished] == ["j000002"]
    assert [r["job_id"] for r in replay.finished] == ["j000000"]
    assert replay.max_seq == 2
    assert replay.records == 6
    assert replay.torn == 0
    # the unfinished record carries everything replay needs
    rec = replay.unfinished[0]
    assert rec["body"] == {"circuit": "example"}
    assert rec["tenant"] == "t0" and rec["key"] == KEY


def test_torn_final_record_is_skipped_not_fatal(tmp_path):
    journal = JobJournal(tmp_path)
    _accept(journal, 0)
    _accept(journal, 1)
    journal.close()
    seg = next((tmp_path / "journal").glob("seg-*.jsonl"))
    with open(seg, "a") as fh:
        fh.write('{"schema": "repro.jobs/1", "type": "acc')  # kill -9 tear

    replay = JobJournal(tmp_path).replay()
    assert replay.torn == 1
    assert [r["job_id"] for r in replay.unfinished] == ["j000000", "j000001"]


def test_successful_done_wins_over_failure_markers(tmp_path):
    # A replay-failure marker followed by a real answer (or the reverse
    # order, from an interleaved redispatch) must restore the job.
    journal = JobJournal(tmp_path)
    _accept(journal, 0)
    journal.append("done", "j000000", status="failed")
    journal.append("done", "j000000", status="done")
    _accept(journal, 1)
    journal.append("done", "j000001", status="done")
    journal.append("done", "j000001", status="failed")
    journal.close()

    replay = JobJournal(tmp_path).replay()
    assert replay.unfinished == []
    assert [r["job_id"] for r in replay.finished] == ["j000000", "j000001"]


def test_rotation_and_compaction_bound_the_log(tmp_path):
    journal = JobJournal(tmp_path, segment_records=8)
    for n in range(20):
        _accept(journal, n)
        journal.append("done", f"j{n:06d}", status="done")
    # 40 records over 8-record segments: several rotations, and every
    # full segment's jobs are done, so rotation-time compaction already
    # deleted them.
    assert journal.rotations >= 4
    assert journal.segments_compacted >= 4
    assert journal.stats()["segments"] <= 2
    journal.close()
    replay = JobJournal(tmp_path).replay()
    assert replay.unfinished == []


def test_compaction_spans_segment_generations(tmp_path):
    # accepted in one segment by one gateway, done in a later segment
    # by its successor: the old segment is compactable only via the
    # *global* done-set that replay() seeds — a restarted writer's
    # in-memory done-set starts empty.
    first = JobJournal(tmp_path, segment_records=8)
    for n in range(7):
        _accept(first, n)
    first.close()                                # seg 1: accepted only

    second = JobJournal(tmp_path, segment_records=8)
    for n in range(2):
        _accept(second, n)                       # rotates seg 1 out
    for n in range(7):
        second.append("done", f"j{n:06d}", status="done")
    second.close()
    assert second.segments_compacted == 0        # seg 1 looked live to it

    reopened = JobJournal(tmp_path)
    assert len(reopened._segments()) >= 2
    replay = reopened.replay()
    assert replay.unfinished == []
    assert reopened.compact() >= 1
    assert len(reopened._segments()) == 1        # only the active one
    reopened.close()


def test_append_never_raises_on_disk_failure(tmp_path):
    class _Enospc:
        def write(self, s):
            raise OSError(28, "No space left on device")

        def flush(self):
            pass

        def close(self):
            pass

        def fileno(self):
            return -1

    journal = JobJournal(tmp_path)
    _accept(journal, 0)
    journal._fh = _Enospc()
    _accept(journal, 1)                          # must not raise
    assert journal.write_errors == 1
    assert journal.appends == 1


def test_stats_shape(tmp_path):
    journal = JobJournal(tmp_path)
    _accept(journal, 0)
    journal.append("done", "j000000", status="done")
    stats = journal.stats()
    for fieldname in ("schema", "dir", "segments", "active_records",
                      "appends", "fsyncs", "rotations",
                      "segments_compacted", "write_errors", "done_tracked"):
        assert fieldname in stats
    assert stats["schema"] == JOURNAL_SCHEMA
    assert stats["appends"] == 2 and stats["done_tracked"] == 1
    journal.close()


# ----------------------------------------------------------------------
# fsck
# ----------------------------------------------------------------------


def _seeded_tree(root):
    cache = DiskCache(root)
    for i in range(3):
        cache.put(f"{i:064d}", {"doc": i})
    journal = JobJournal(root)
    _accept(journal, 0)
    journal.close()
    return sorted(root.glob("*/objects/*/*.json"))


def test_fsck_clean_tree_is_ok(tmp_path):
    _seeded_tree(tmp_path)
    report = fsck_scan(tmp_path)
    assert report["ok"] and not report["issues"]
    assert report["checked_files"] >= 4
    schemas = {s["schema"] for s in report["schemas"]}
    assert JOURNAL_SCHEMA in schemas
    assert "clean" in render_fsck_report(report)


def test_fsck_detects_then_repairs_every_kind(tmp_path):
    objects = _seeded_tree(tmp_path)
    objects[0].write_text('{"torn')                            # corrupt entry
    (objects[1].parent / ".orphan-1.json.tmp").write_text("x")  # orphan tmp
    seg = next((tmp_path / "journal").glob("seg-*.jsonl"))
    with open(seg, "a") as fh:
        fh.write('{"schema": "repro.jobs/1"')                  # torn journal

    report = fsck_scan(tmp_path)
    assert not report["ok"]
    assert sorted({i["kind"] for i in report["issues"]}) \
        == ["corrupt-entry", "orphan-tmp", "torn-journal"]
    assert all("repaired" not in i for i in report["issues"])

    report = fsck_scan(tmp_path, repair=True)
    # repair leaves a servable tree, so the CLI contract is exit 0
    assert report["ok"]
    assert len(report["repaired"]) == len(report["issues"]) == 3

    # corrupt entries are quarantined (never silently deleted), the
    # orphan is gone, and the journal replays cleanly again
    quarantined = list(tmp_path.glob("*/quarantine/*.json"))
    assert len(quarantined) == 1
    assert not list(tmp_path.glob("*/objects/*/.*.tmp"))
    replay = JobJournal(tmp_path).replay()
    assert replay.torn == 0
    assert [r["job_id"] for r in replay.unfinished] == ["j000000"]

    assert fsck_scan(tmp_path)["ok"]


def test_fsck_repair_not_ok_when_repair_fails(tmp_path):
    objects = _seeded_tree(tmp_path)
    objects[0].write_text('{"torn')
    import os

    real_replace = os.replace

    def refuse(src, dst, *a, **kw):
        if "quarantine" in str(dst):
            raise OSError(13, "Permission denied")
        return real_replace(src, dst, *a, **kw)

    os.replace = refuse
    try:
        report = fsck_scan(tmp_path, repair=True)
    finally:
        os.replace = real_replace
    assert not report["ok"]
    assert report["issues"][0].get("repair_error")
    assert "repair failed" in render_fsck_report(report)


# ----------------------------------------------------------------------
# gateway replay, end to end
# ----------------------------------------------------------------------


async def _started(**kw):
    kw.setdefault("port", 0)
    kw.setdefault("workers", 2)
    gw = Gateway(GatewayConfig(**kw))
    await gw.start()
    assert await gw.wait_ready(15), "workers never became ready"
    return gw


def test_unfinished_job_replayed_across_restart(tmp_path):
    # Simulate a kill -9: an accepted record with no done record is all
    # the next gateway gets.  It must finish the job under the SAME id.
    journal = JobJournal(tmp_path)
    _accept(journal, 7, body={"circuit": "example",
                              "algorithm": "sequential"})
    journal.close()

    async def main():
        gw = await _started(cache_dir=str(tmp_path))
        try:
            status, lines = await http_json_lines(
                "GET", gw.url + "/v1/jobs/j000007?watch=1"
            )
            assert status == 200
            assert lines[-1]["status"] == "done"
            assert lines[-1]["result"]["final_lc"] > 0
            assert gw.metrics.snapshot()["counters"]["journal_replayed"] == 1

            # the id sequence continues past the journaled high-water
            # mark, so replayed and fresh jobs can never collide
            status, doc = await http_json(
                "POST", gw.url + "/v1/factor",
                {"circuit": "example", "wait": False})
            assert status in (200, 202)
            assert int(doc["job_id"][1:]) > 7
        finally:
            await gw.stop()

    asyncio.run(main())


def test_finished_job_survives_restart(tmp_path):
    # A client that got its 202 but never collected the answer must
    # still be able to GET it after a full gateway restart.
    async def main():
        body = {"circuit": "example", "algorithm": "sequential"}
        gw = await _started(cache_dir=str(tmp_path))
        try:
            status, first = await http_json(
                "POST", gw.url + "/v1/factor", body)
            assert status == 200 and first["status"] == "done"
        finally:
            await gw.stop()

        gw = await _started(cache_dir=str(tmp_path))
        try:
            assert gw.metrics.snapshot()["counters"]["journal_restored"] >= 1
            status, doc = await http_json(
                "GET", gw.url + f"/v1/jobs/{first['job_id']}")
            assert status == 200
            assert doc["status"] == "done"
            assert doc["result"]["final_lc"] == first["result"]["final_lc"]
        finally:
            await gw.stop()

    asyncio.run(main())


def test_replay_coalesces_with_fresh_identical_request(tmp_path):
    # A replayed job and a fresh identical request must resolve to ONE
    # computation — the fresh request coalesces onto the replayed job
    # (or answers from its cached result), never a duplicate dispatch.
    body = {"eqn": _probe_circuit_eqn(31), "algorithm": "sequential"}
    journal = JobJournal(tmp_path)
    _accept(journal, 3, body=dict(body))
    journal.close()

    async def main():
        gw = await _started(cache_dir=str(tmp_path))
        try:
            status, fresh = await http_json(
                "POST", gw.url + "/v1/factor", dict(body), timeout=60)
            assert status == 200 and fresh["status"] == "done"

            status, replayed = await http_json(
                "GET", gw.url + "/v1/jobs/j000003")
            assert status == 200 and replayed["status"] == "done"
            assert (replayed["result"]["final_lc"]
                    == fresh["result"]["final_lc"])

            counters = gw.metrics.snapshot()["counters"]
            assert counters["journal_replayed"] == 1
            assert counters.get("requests_dispatched", 0) == 1
        finally:
            await gw.stop()

    asyncio.run(main())


def test_journal_disabled_serves_without_wal(tmp_path):
    async def main():
        gw = await _started(cache_dir=str(tmp_path), journal=False)
        try:
            assert gw.journal is None
            status, doc = await http_json(
                "POST", gw.url + "/v1/factor", {"circuit": "example"})
            assert status == 200 and doc["status"] == "done"
            status, health = await http_json("GET", gw.url + "/healthz")
            assert status == 200
            assert (health["gateway"] or {}).get("journal") is None
        finally:
            await gw.stop()
        assert not (tmp_path / "journal").exists()

    asyncio.run(main())


def test_replay_is_idempotent_when_result_already_cached(tmp_path):
    # If the computation landed in the disk cache before the crash, the
    # replayed job answers from it — zero recomputation.
    async def main():
        body = {"circuit": "example", "algorithm": "lshaped", "procs": 2}
        gw = await _started(cache_dir=str(tmp_path))
        try:
            status, first = await http_json(
                "POST", gw.url + "/v1/factor", body)
            assert status == 200
        finally:
            await gw.stop()

        # forge a crash artifact: the same request accepted again but
        # with its done record missing
        journal = JobJournal(tmp_path)
        _accept(journal, 90, body=dict(body))
        journal.close()

        gw = await _started(cache_dir=str(tmp_path))
        try:
            status, doc = await http_json(
                "GET", gw.url + "/v1/jobs/j000090")
            assert status == 200 and doc["status"] == "done"
            assert doc["result"]["final_lc"] == first["result"]["final_lc"]
            counters = gw.metrics.snapshot()["counters"]
            assert counters.get("requests_dispatched", 0) == 0
        finally:
            await gw.stop()

    asyncio.run(main())


def test_journal_records_are_versioned_json_lines(tmp_path):
    # the on-disk format is the API other tooling (fsck, ops scripts)
    # depends on: every line self-describes via the schema field
    journal = JobJournal(tmp_path)
    _accept(journal, 0)
    journal.append("dispatched", "j000000", worker=1)
    journal.append("done", "j000000", status="done")
    journal.close()
    seg = next((tmp_path / "journal").glob("seg-*.jsonl"))
    records = [json.loads(line) for line in seg.read_text().splitlines()]
    assert [r["type"] for r in records] == ["accepted", "dispatched", "done"]
    assert all(r["schema"] == JOURNAL_SCHEMA for r in records)
    assert (tmp_path / "journal" / "VERSION").read_text().strip() \
        == JOURNAL_SCHEMA
