"""End-to-end gateway tests: real worker processes, real HTTP.

pytest-asyncio is not available, so every test wraps its async body in
``asyncio.run``.  The tests favor one gateway boot per scenario and the
tiny built-in ``example`` circuit wherever latency does not matter; the
coalescing/crash scenarios need a job slow enough to overlap requests,
so they reuse the bench's generated probe circuit.
"""

import asyncio
import os
import signal

import pytest

from repro.serve import Gateway, GatewayConfig
from repro.serve.bench import _probe_circuit_eqn
from repro.serve.httpio import http_json, http_json_lines


def _config(**kw):
    kw.setdefault("port", 0)
    kw.setdefault("workers", 2)
    return GatewayConfig(**kw)


async def _started(**kw):
    gw = Gateway(_config(**kw))
    await gw.start()
    assert await gw.wait_ready(15), "workers never became ready"
    return gw


def test_factor_roundtrip_and_gateway_cache():
    async def main():
        gw = await _started()
        try:
            body = {"circuit": "example", "algorithm": "sequential"}
            status, doc = await http_json("POST", gw.url + "/v1/factor", body)
            assert status == 200
            assert doc["status"] == "done"
            result = doc["result"]
            assert result["final_lc"] < result["initial_lc"]
            assert doc["cache"] == "computed"

            status, doc = await http_json("POST", gw.url + "/v1/factor", body)
            assert status == 200
            assert doc["cache"] == "gateway"  # answered without dispatch

            counters = gw.metrics.snapshot()["counters"]
            assert counters["requests_dispatched"] == 1
            assert counters["results_from_gateway"] == 1
        finally:
            await gw.stop()

    asyncio.run(main())


def test_job_status_endpoint_and_watch_stream():
    async def main():
        gw = await _started(workers=1)
        try:
            body = {"circuit": "example", "wait": False}
            status, doc = await http_json("POST", gw.url + "/v1/factor", body)
            assert status == 202
            job_id = doc["job_id"]
            assert doc["status"] in ("pending", "done")

            status, lines = await http_json_lines(
                "GET", gw.url + f"/v1/jobs/{job_id}?watch=1"
            )
            assert status == 200
            assert lines, "watch stream sent nothing"
            assert lines[-1]["status"] == "done"
            assert lines[-1]["result"]["final_lc"] > 0

            status, doc = await http_json("GET", gw.url + f"/v1/jobs/{job_id}")
            assert status == 200 and doc["status"] == "done"

            status, _ = await http_json("GET", gw.url + "/v1/jobs/nope")
            assert status == 404
        finally:
            await gw.stop()

    asyncio.run(main())


def test_identical_concurrent_requests_coalesce_to_one_computation():
    async def main():
        gw = await _started()
        try:
            body = {"eqn": _probe_circuit_eqn(11), "algorithm": "sequential"}
            results = await asyncio.gather(*[
                http_json("POST", gw.url + "/v1/factor", dict(body))
                for _ in range(5)
            ])
            assert [s for s, _ in results] == [200] * 5
            answers = {d["result"]["final_lc"] for _, d in results}
            assert len(answers) == 1  # every waiter got the same answer

            counters = gw.metrics.snapshot()["counters"]
            assert counters["requests_dispatched"] == 1
            assert counters["requests_coalesced"] == 4
            assert sum(d["coalesced"] for _, d in results) == 4
        finally:
            await gw.stop()

    asyncio.run(main())


def test_rate_limit_is_per_tenant():
    async def main():
        gw = await _started(workers=1, rate_limit=1.0, burst=1.0)
        try:
            a = {"circuit": "example", "tenant": "a", "wait": False}
            status, _ = await http_json("POST", gw.url + "/v1/factor", a)
            assert status in (200, 202)
            status, doc = await http_json("POST", gw.url + "/v1/factor", a)
            assert status == 429
            assert doc["error"] == "rate_limited"
            assert doc["tenant"] == "a"
            assert doc["retry_after"] > 0

            b = {"circuit": "example", "tenant": "b", "wait": False}
            status, _ = await http_json("POST", gw.url + "/v1/factor", b)
            assert status in (200, 202)  # b's bucket is untouched

            counters = gw.metrics.snapshot()["counters"]
            assert counters["requests_rate_limited"] == 1
        finally:
            await gw.stop()

    asyncio.run(main())


def test_admission_control_rejects_when_inflight_is_full():
    async def main():
        gw = await _started(workers=1, max_inflight=1)
        try:
            slow = {"eqn": _probe_circuit_eqn(12), "wait": False}
            status, doc = await http_json("POST", gw.url + "/v1/factor", slow)
            assert status == 202
            job_id = doc["job_id"]

            other = {"circuit": "example", "wait": False}
            status, doc = await http_json("POST", gw.url + "/v1/factor", other)
            assert status == 429
            assert doc["error"] == "overloaded"
            assert gw.metrics.snapshot()["counters"]["requests_overloaded"] == 1

            # drain the slow job so shutdown has nothing in flight
            _, lines = await http_json_lines(
                "GET", gw.url + f"/v1/jobs/{job_id}?watch=1"
            )
            assert lines[-1]["status"] == "done"
        finally:
            await gw.stop()

    asyncio.run(main())


def test_worker_crash_respawns_and_request_still_completes():
    async def main():
        gw = await _started()
        try:
            body = {"eqn": _probe_circuit_eqn(13), "algorithm": "sequential"}
            task = asyncio.ensure_future(
                http_json("POST", gw.url + "/v1/factor", body, timeout=60)
            )
            for _ in range(100):  # wait until the job is on a worker
                await asyncio.sleep(0.02)
                busy = [h for h in gw._handles if gw._outstanding[h.worker_id]]
                if busy:
                    break
            assert busy, "request never reached a worker"
            os.kill(busy[0].process.pid, signal.SIGKILL)

            status, doc = await task
            assert status == 200
            assert doc["status"] == "done"

            counters = gw.metrics.snapshot()["counters"]
            assert counters["worker_crashes"] >= 1
            assert counters["requests_redispatched"] >= 1
            assert all(h.alive() for h in gw._handles)  # shard respawned
        finally:
            await gw.stop()

    asyncio.run(main())


def test_persistent_cache_survives_gateway_restart(tmp_path):
    async def main():
        body = {"circuit": "example", "algorithm": "lshaped", "procs": 2}
        gw = await _started(cache_dir=str(tmp_path))
        try:
            status, first = await http_json("POST", gw.url + "/v1/factor", body)
            assert status == 200 and first["cache"] == "computed"
        finally:
            await gw.stop()

        gw = await _started(workers=3, cache_dir=str(tmp_path))
        try:
            status, doc = await http_json("POST", gw.url + "/v1/factor", body)
            assert status == 200
            # The disk tier survives the restart; journal restore keeps
            # the old job fetchable but must not shadow this tier.
            assert doc["cache"] == "disk"
            assert doc["result"]["final_lc"] == first["result"]["final_lc"]
        finally:
            await gw.stop()

    asyncio.run(main())


def test_health_ready_metrics_and_error_routes():
    async def main():
        gw = await _started()
        try:
            status, doc = await http_json("GET", gw.url + "/healthz")
            assert status == 200
            assert doc["status"] == "ok"
            worker = doc["workers"]["0"]
            assert worker["alive"] and not worker["stale"]
            assert worker["engine"]["pool"]["alive"] is True
            assert "cache" in worker["engine"]

            status, doc = await http_json("GET", gw.url + "/readyz")
            assert status == 200 and doc["ready"] is True

            status, doc = await http_json("GET", gw.url + "/metrics")
            assert status == 200
            assert "latency" in doc and "cache" in doc

            status, _ = await http_json("GET", gw.url + "/nope")
            assert status == 404
            status, _ = await http_json("GET", gw.url + "/v1/factor")
            assert status == 405
            status, doc = await http_json(
                "POST", gw.url + "/v1/factor", {"circuit": "example",
                                                "algorithm": "quantum"}
            )
            assert status == 400
            status, doc = await http_json(
                "POST", gw.url + "/v1/factor", {"circuit": "no-such-circuit"}
            )
            assert status == 400
        finally:
            await gw.stop()

    asyncio.run(main())


def test_stop_leaks_no_processes():
    async def main():
        gw = await _started()
        pids = [h.process.pid for h in gw._handles]
        await gw.stop()
        return pids

    pids = asyncio.run(main())
    import multiprocessing

    assert multiprocessing.active_children() == []
    for pid in pids:
        with pytest.raises(ProcessLookupError):
            os.kill(pid, 0)
