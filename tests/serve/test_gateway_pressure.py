"""Gateway under pressure: ring pinning, load shedding, shard breaker.

Covers the crash-loop/pressure protections around the serving tier:

- the job-registry ring never evicts a job that is live or that a
  watcher stream is pinned to (the regression was a flood of fast jobs
  evicting a finished-but-still-watched job mid-stream);
- the KC-footprint budget sheds work with 429 + Retry-After instead of
  letting one burst of oversized jobs exhaust worker memory;
- a failing shard with no fallback answers 503 + Retry-After and
  retires the job in the journal (the client owns the retry, never the
  replay); with a fallback alive the job is re-sharded instead;
- worker respawn delays back off exponentially with jitter.
"""

import asyncio

from repro.serve import Gateway, GatewayConfig
from repro.serve.bench import _probe_circuit_eqn
from repro.serve.durability import JobJournal
from repro.serve.gateway import Job
from repro.serve.httpio import http_json, http_json_lines


def _config(**kw):
    kw.setdefault("port", 0)
    kw.setdefault("workers", 2)
    return GatewayConfig(**kw)


async def _started(**kw):
    gw = Gateway(_config(**kw))
    await gw.start()
    assert await gw.wait_ready(15), "workers never became ready"
    return gw


def _done_job(n):
    job = Job(f"j{n:06d}", f"{n:064d}", "t0", {"algorithm": "sequential"})
    job.done.set()
    return job


def test_register_never_evicts_live_or_pinned_jobs():
    gw = Gateway(_config(job_registry_capacity=3))
    jobs = [_done_job(n) for n in range(3)]
    for job in jobs:
        gw._register(job)

    jobs[0].pins = 1                      # a watcher stream is attached
    gw._register(_done_job(3))
    assert "j000000" in gw._jobs          # pinned: survived the overflow
    assert "j000001" not in gw._jobs      # oldest unpinned done: evicted

    live = Job("j000010", "k" * 64, "t0", {"algorithm": "sequential"})
    gw._register(live)                    # live jobs are never evicted
    gw._register(_done_job(4))
    gw._register(_done_job(5))
    assert "j000010" in gw._jobs and "j000000" in gw._jobs

    jobs[0].pins = 0                      # the watcher detached
    gw._register(_done_job(6))
    assert "j000000" not in gw._jobs      # now it is fair game

    # every survivor pinned or live: the ring may exceed capacity, but
    # the eviction scan must terminate rather than spin
    for job in gw._jobs.values():
        job.pins = 1
    pinned = _done_job(7)
    pinned.pins = 1
    gw._register(pinned)
    assert len(gw._jobs) > 3


def test_watch_stream_survives_registry_churn(tmp_path):
    async def main():
        gw = await _started(job_registry_capacity=2,
                            cache_dir=str(tmp_path))
        try:
            slow = {"eqn": _probe_circuit_eqn(41),
                    "algorithm": "sequential", "wait": False}
            status, doc = await http_json(
                "POST", gw.url + "/v1/factor", slow)
            assert status == 202
            watcher = asyncio.ensure_future(http_json_lines(
                "GET", gw.url + f"/v1/jobs/{doc['job_id']}?watch=1",
                timeout=60,
            ))
            await asyncio.sleep(0.1)      # let the watcher attach + pin
            # churn the tiny ring with quick distinct jobs
            for algorithm in ("sequential", "baseline", "lshaped",
                              "replicated", "independent"):
                status, _ = await http_json(
                    "POST", gw.url + "/v1/factor",
                    {"circuit": "example", "algorithm": algorithm})
                assert status == 200
            status, lines = await watcher
            assert status == 200
            assert lines[-1]["status"] == "done"
            assert lines[-1]["result"]["final_lc"] > 0
        finally:
            await gw.stop()

    asyncio.run(main())


def test_footprint_budget_sheds_with_429_retry_after():
    async def main():
        gw = await _started(workers=1, max_footprint=1)
        try:
            first = {"eqn": _probe_circuit_eqn(42),
                     "algorithm": "sequential", "wait": False}
            status, doc = await http_json(
                "POST", gw.url + "/v1/factor", first)
            assert status == 202          # an idle gateway always admits
            job_id = doc["job_id"]

            second = {"eqn": _probe_circuit_eqn(43),
                      "algorithm": "sequential", "wait": False}
            status, shed = await http_json(
                "POST", gw.url + "/v1/factor", second)
            assert status == 429
            assert shed["error"] == "load_shed"
            assert shed["retry_after"] > 0
            assert shed["footprint"] > shed["budget"]
            assert gw.metrics.snapshot()["counters"]["requests_shed"] == 1

            # drain the admitted job so shutdown is clean
            _, lines = await http_json_lines(
                "GET", gw.url + f"/v1/jobs/{job_id}?watch=1", timeout=60)
            assert lines[-1]["status"] == "done"
        finally:
            await gw.stop()

    asyncio.run(main())


def test_failing_shard_without_fallback_answers_503(tmp_path):
    async def main():
        gw = await _started(workers=1, cache_dir=str(tmp_path))
        try:
            gw._handles[0].failing = True     # breaker open, no fallback
            status, doc = await http_json(
                "POST", gw.url + "/v1/factor", {"circuit": "example"})
            assert status == 503
            assert doc["error"] == "shard_failing"
            assert doc["retry_after"] > 0
            counters = gw.metrics.snapshot()["counters"]
            assert counters["requests_shard_failing"] == 1
        finally:
            await gw.stop()

        # the 503'd job was retired in the journal: the client owns the
        # retry, so the next gateway must NOT resurrect it
        replay = JobJournal(tmp_path).replay()
        assert replay.unfinished == []

    asyncio.run(main())


def test_failing_shard_with_fallback_reshards():
    async def main():
        gw = await _started(workers=2)
        try:
            gw._handles[0].failing = True
            statuses = []
            for algorithm in ("sequential", "baseline", "lshaped"):
                status, doc = await http_json(
                    "POST", gw.url + "/v1/factor",
                    {"circuit": "example", "algorithm": algorithm})
                statuses.append(status)
                assert doc["status"] == "done"
            assert statuses == [200, 200, 200]
            counters = gw.metrics.snapshot()["counters"]
            # at least one of the three keys hashed onto the failing
            # shard and was routed to the survivor instead
            assert counters.get("requests_resharded", 0) >= 1
            assert counters.get("requests_shard_failing", 0) == 0
        finally:
            gw._handles[0].failing = False
            await gw.stop()

    asyncio.run(main())


def test_respawn_backoff_is_exponential_and_jittered():
    gw = Gateway(_config(respawn_backoff=0.2, respawn_backoff_max=1.0))
    assert gw._respawn_delay(1) == 0.0    # first respawn is free
    for consecutive, base in ((2, 0.2), (3, 0.4), (4, 0.8), (5, 1.0),
                              (9, 1.0)):
        for _ in range(16):
            delay = gw._respawn_delay(consecutive)
            assert base * 0.5 <= delay <= base * 1.5
