"""Load generator: deterministic arrivals, percentiles, one live burst."""

import asyncio
import json

import pytest

from repro.serve import Gateway, GatewayConfig
from repro.serve.loadgen import (
    LoadgenConfig,
    load_workload_file,
    percentile,
    poisson_arrivals,
    run_loadgen,
)


class TestPoissonArrivals:
    def test_deterministic_for_a_seed(self):
        assert poisson_arrivals(20, 2, seed=7) == poisson_arrivals(20, 2, seed=7)
        assert poisson_arrivals(20, 2, seed=7) != poisson_arrivals(20, 2, seed=8)

    def test_sorted_and_within_duration(self):
        arrivals = poisson_arrivals(50, 3, seed=0)
        assert arrivals == sorted(arrivals)
        assert all(0 < t < 3 for t in arrivals)

    def test_mean_rate_is_close(self):
        arrivals = poisson_arrivals(100, 20, seed=1)
        assert len(arrivals) == pytest.approx(2000, rel=0.1)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 1, seed=0)
        with pytest.raises(ValueError):
            poisson_arrivals(1, 0, seed=0)


class TestPercentile:
    def test_empty_is_none(self):
        assert percentile([], 50) is None

    def test_single_value(self):
        assert percentile([4.0], 0) == 4.0
        assert percentile([4.0], 100) == 4.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 50) == 3.0
        assert percentile(values, 100) == 5.0
        assert percentile(values, 99) == 5.0


class TestWorkloadFile:
    def test_reads_jsonl_skipping_comments(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text(
            '# a comment\n{"circuit": "example"}\n\n'
            '{"circuit": "example", "algorithm": "lshaped", "procs": 2}\n'
        )
        bodies = load_workload_file(str(path))
        assert len(bodies) == 2
        assert bodies[1]["algorithm"] == "lshaped"

    def test_bad_json_raises_with_line_number(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text('{"ok": 1}\n{broken\n')
        with pytest.raises(ValueError, match=":2:"):
            load_workload_file(str(path))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text("# nothing here\n")
        with pytest.raises(ValueError, match="no request bodies"):
            load_workload_file(str(path))

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text(json.dumps(["not", "an", "object"]) + "\n")
        with pytest.raises(ValueError, match="JSON object"):
            load_workload_file(str(path))


def test_live_burst_has_zero_failures_and_ordered_percentiles():
    async def main():
        gw = Gateway(GatewayConfig(port=0, workers=2))
        await gw.start()
        assert await gw.wait_ready(15)
        try:
            report = await run_loadgen(LoadgenConfig(
                url=gw.url, rate=30.0, duration=1.0, tenants=2, seed=3,
            ))
        finally:
            await gw.stop()
        return report

    report = asyncio.run(main())
    assert report.sent > 0
    assert report.failed == 0
    assert report.ok == report.sent  # no limiter configured: all accepted
    assert report.throughput_rps > 0
    lat = report.latencies_ms
    assert lat["p50"] is not None
    assert lat["p50"] <= lat["p95"] <= lat["p99"]
    # the tiny example workload repeats: later requests hit caches
    assert sum(report.cache_mix.values()) == report.ok
    assert report.cache_mix.get("gateway", 0) > 0
    doc = report.to_dict()
    assert doc["failed"] == 0 and doc["latency_ms"]["p50"] is not None
    assert "open-loop load" in report.render()
