"""Portfolio scheduling classes over HTTP: one gateway boot covers the
happy path, the file-path/scale client error, and /metrics aggregation.
"""

import asyncio

from repro.serve import Gateway, GatewayConfig
from repro.serve.httpio import http_json

EQN = "INORDER = a b c;\nOUTORDER = f;\nf = a * b + a * c;\n"


async def _started(**kw):
    kw.setdefault("port", 0)
    kw.setdefault("workers", 1)
    gw = Gateway(GatewayConfig(**kw))
    await gw.start()
    assert await gw.wait_ready(15), "workers never became ready"
    return gw


def test_portfolio_classes_over_http(tmp_path):
    netlist = tmp_path / "tiny.eqn"
    netlist.write_text(EQN)

    async def main():
        gw = await _started(cache_dir=str(tmp_path / "cache"))
        try:
            # -- class sugar routes to the portfolio racer -------------
            status, doc = await http_json(
                "POST", gw.url + "/v1/factor",
                {"circuit": "example", "class": "latency"},
            )
            assert status == 200, doc
            assert doc["status"] == "done"
            assert doc["result"]["algorithm"] == "portfolio:latency"
            assert doc["result"]["final_lc"] <= doc["result"]["initial_lc"]

            status, doc = await http_json(
                "POST", gw.url + "/v1/factor",
                {"circuit": "example", "class": "quality"},
            )
            assert status == 200, doc
            assert doc["result"]["algorithm"] == "portfolio:quality"

            # -- conflicting class/algorithm is a client error ---------
            status, doc = await http_json(
                "POST", gw.url + "/v1/factor",
                {"circuit": "example", "class": "latency",
                 "algorithm": "lshaped"},
            )
            assert status == 400
            assert "conflicts" in doc["error"]

            # -- file-path circuits reject non-unit scale up front -----
            status, doc = await http_json(
                "POST", gw.url + "/v1/factor",
                {"circuit": str(netlist), "scale": 0.5, "class": "latency"},
            )
            assert status == 400
            assert "scale=0.5" in doc["error"]

            status, doc = await http_json(
                "POST", gw.url + "/v1/factor",
                {"circuit": str(netlist), "class": "latency"},
            )
            assert status == 200, doc
            assert doc["result"]["algorithm"] == "portfolio:latency"

            # -- /metrics aggregates the workers' portfolio counters ---
            status, doc = await http_json("GET", gw.url + "/metrics")
            assert status == 200
            portfolio = doc["portfolio"]
            assert portfolio["portfolio_races"] >= 1
            assert sum(portfolio["portfolio_lane_wins"].values()) >= \
                portfolio["portfolio_races"]
        finally:
            await gw.stop()

    asyncio.run(main())
