"""Request parsing, canonical keys, and result documents."""

import pytest

from repro.circuits import load_circuit
from repro.serve.protocol import (
    BadRequest,
    job_cache_key,
    parse_job_request,
)
from repro.service.cache import canonical_job_key


def test_minimal_request_fills_defaults():
    spec = parse_job_request({"circuit": "example"})
    assert spec["circuit"] == "example"
    assert spec["eqn"] is None
    assert spec["algorithm"] == "sequential"
    assert spec["procs"] == 4
    assert spec["searcher"] == "pingpong"
    assert spec["tenant"] == "default"
    assert spec["wait"] is True
    assert spec["include_network"] is False


def test_inline_eqn_request():
    spec = parse_job_request({"eqn": "f = a b + c;", "algorithm": "lshaped",
                              "procs": 2, "tenant": "t1"})
    assert spec["eqn"] == "f = a b + c;"
    assert spec["circuit"] is None
    assert spec["procs"] == 2


@pytest.mark.parametrize("body", [
    None,
    [],
    {},                                      # neither circuit nor eqn
    {"circuit": "example", "eqn": "f=a;"},   # both
    {"circuit": 7},
    {"circuit": "example", "algorithm": "quantum"},
    {"circuit": "example", "searcher": "magic"},
    {"circuit": "example", "procs": 0},
    {"circuit": "example", "procs": True},
    {"circuit": "example", "scale": -1},
    {"circuit": "example", "node_budget": 0},
    {"circuit": "example", "params": "not-a-dict"},
    {"circuit": "example", "tenant": ""},
])
def test_bad_requests_rejected(body):
    with pytest.raises(BadRequest):
        parse_job_request(body)


def test_job_cache_key_matches_engine_digest():
    # The serving tier and the in-process engine cache must agree on
    # what "the same job" means, or the tiers stop composing.
    network = load_circuit("example")
    spec = parse_job_request(
        {"circuit": "example", "algorithm": "lshaped", "procs": 2}
    )
    assert job_cache_key(spec, network) == canonical_job_key(
        network, "lshaped", 2, params={}, searcher="pingpong",
        node_budget=None,
    )


def test_job_cache_key_ignores_serving_only_fields():
    network = load_circuit("example")
    base = parse_job_request({"circuit": "example"})
    noisy = parse_job_request(
        {"circuit": "example", "tenant": "other", "wait": False,
         "include_network": True}
    )
    assert job_cache_key(base, network) == job_cache_key(noisy, network)


class TestClassField:
    """'class' is SLO sugar for the portfolio algorithms."""

    @pytest.mark.parametrize("klass", ["latency", "quality"])
    def test_class_selects_portfolio_algorithm(self, klass):
        spec = parse_job_request({"circuit": "example", "class": klass})
        assert spec["algorithm"] == f"portfolio:{klass}"

    def test_consistent_restatement_is_allowed(self):
        spec = parse_job_request({
            "circuit": "example",
            "class": "latency",
            "algorithm": "portfolio:latency",
        })
        assert spec["algorithm"] == "portfolio:latency"

    def test_unknown_class_rejected(self):
        with pytest.raises(BadRequest, match="unknown class 'cheapest'"):
            parse_job_request({"circuit": "example", "class": "cheapest"})

    def test_conflicting_algorithm_rejected(self):
        with pytest.raises(BadRequest, match="conflicts with explicit"):
            parse_job_request({
                "circuit": "example",
                "class": "quality",
                "algorithm": "lshaped",
            })

    def test_explicit_portfolio_algorithm_without_class(self):
        spec = parse_job_request({
            "circuit": "example", "algorithm": "portfolio:quality",
        })
        assert spec["algorithm"] == "portfolio:quality"
