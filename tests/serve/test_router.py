"""Shard routing stability and token-bucket admission control."""

import hashlib

import pytest

from repro.serve.router import TenantRateLimiter, TokenBucket, shard_for


def _digest(s):
    return hashlib.sha256(s.encode()).hexdigest()


class TestShardFor:
    def test_deterministic_and_in_range(self):
        for i in range(200):
            key = _digest(f"job-{i}")
            shard = shard_for(key, 4)
            assert 0 <= shard < 4
            assert shard == shard_for(key, 4)

    def test_known_values_stay_stable(self):
        # Shard placement is an on-disk/cross-restart contract: the same
        # key must route to the same worker forever.  Golden values pin
        # the top-64-bit-mod rule against accidental rewrites.
        assert shard_for("0" * 64, 4) == 0
        assert shard_for("f" * 64, 4) == (0xFFFFFFFFFFFFFFFF) % 4
        assert shard_for(_digest("example|sequential|4"), 7) == \
            int(_digest("example|sequential|4")[:16], 16) % 7

    def test_loosely_uniform(self):
        counts = [0] * 4
        for i in range(2000):
            counts[shard_for(_digest(f"k{i}"), 4)] += 1
        assert min(counts) > 2000 / 4 * 0.7

    def test_single_shard_and_errors(self):
        assert shard_for(_digest("x"), 1) == 0
        with pytest.raises(ValueError):
            shard_for(_digest("x"), 0)


class TestTokenBucket:
    def test_burst_then_deny_then_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0, now=0.0)
        assert bucket.allow(now=0.0)
        assert bucket.allow(now=0.0)
        assert not bucket.allow(now=0.0)       # burst exhausted
        assert not bucket.allow(now=0.5)       # half a token refilled
        assert bucket.allow(now=2.0)           # 0.5 + 1.5 refilled = 2.0
        assert bucket.allow(now=2.0)           # ...so a second one fits
        assert not bucket.allow(now=2.0)       # and the third is denied

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3.0, now=0.0)
        for _ in range(3):
            assert bucket.allow(now=1000.0)    # long idle: only 3 tokens
        assert not bucket.allow(now=1000.0)

    def test_retry_after(self):
        bucket = TokenBucket(rate=2.0, burst=1.0, now=0.0)
        assert bucket.retry_after() == 0.0
        assert bucket.allow(now=0.0)
        assert bucket.retry_after() == pytest.approx(0.5)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.0)


class TestTenantRateLimiter:
    def test_tenants_are_isolated(self):
        limiter = TenantRateLimiter(rate=1.0, burst=1.0)
        assert limiter.allow("a", now=0.0)
        assert not limiter.allow("a", now=0.0)   # a's bucket is empty...
        assert limiter.allow("b", now=0.0)       # ...b is untouched
        assert limiter.stats()["rejected"] == {"a": 1}

    def test_none_rate_disables_limiting(self):
        limiter = TenantRateLimiter(rate=None)
        assert all(limiter.allow("a", now=0.0) for _ in range(100))
        assert limiter.stats()["rejected"] == {}

    def test_default_burst_is_twice_rate(self):
        assert TenantRateLimiter(rate=5.0).burst == 10.0
        assert TenantRateLimiter(rate=0.25).burst == 1.0  # floor of one

    def test_retry_after_unknown_tenant(self):
        assert TenantRateLimiter(rate=1.0).retry_after("nobody") == 0.0
