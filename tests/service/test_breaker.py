"""CircuitBreaker / BreakerBoard state machine."""

from repro.service.breaker import BreakerBoard, BreakerState, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_starts_closed_and_admits():
    br = CircuitBreaker()
    assert br.state == BreakerState.CLOSED
    assert br.allow()


def test_opens_after_threshold_consecutive_failures():
    br = CircuitBreaker(failure_threshold=3)
    for _ in range(2):
        br.record_failure()
        assert br.state == BreakerState.CLOSED
    br.record_failure()
    assert br.state == BreakerState.OPEN
    assert not br.allow()


def test_success_resets_the_failure_count():
    br = CircuitBreaker(failure_threshold=2)
    br.record_failure()
    br.record_success()
    br.record_failure()
    assert br.state == BreakerState.CLOSED


def test_half_open_after_cooldown_admits_one_trial():
    clock = FakeClock()
    br = CircuitBreaker(failure_threshold=1, cooldown=10.0, clock=clock)
    br.record_failure()
    assert not br.allow()
    clock.advance(10.1)
    assert br.state == BreakerState.HALF_OPEN
    assert br.allow()        # the single trial
    assert not br.allow()    # a second caller is still rejected


def test_half_open_success_closes():
    clock = FakeClock()
    br = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
    br.record_failure()
    clock.advance(6.0)
    assert br.allow()
    br.record_success()
    assert br.state == BreakerState.CLOSED
    assert br.allow()


def test_half_open_failure_reopens():
    clock = FakeClock()
    br = CircuitBreaker(failure_threshold=1, cooldown=5.0, clock=clock)
    br.record_failure()
    clock.advance(6.0)
    assert br.allow()
    br.record_failure()
    assert br.state == BreakerState.OPEN
    assert not br.allow()
    clock.advance(6.0)
    assert br.allow()  # cooldown restarts from the re-open


def test_snapshot_reports_state_and_counts():
    br = CircuitBreaker(failure_threshold=2)
    br.record_failure()
    snap = br.snapshot()
    assert snap["state"] == BreakerState.CLOSED
    assert snap["failures"] == 1
    assert snap["opened_at"] is None


def test_board_get_or_create_and_states():
    clock = FakeClock()
    board = BreakerBoard(failure_threshold=1, cooldown=5.0, clock=clock)
    a = board.get("lshaped:dalu")
    assert board.get("lshaped:dalu") is a
    a.record_failure()
    board.get("sequential:des").record_success()
    states = board.states()
    assert states["lshaped:dalu"] == BreakerState.OPEN
    assert states["sequential:des"] == BreakerState.CLOSED
    assert set(board.snapshot()) == {"lshaped:dalu", "sequential:des"}
