import pytest

from repro.network.boolean_network import BooleanNetwork
from repro.service.cache import (
    ResultCache,
    canonical_job_key,
    canonical_network_text,
)
from repro.service.metrics import MetricsRegistry


def _net(order=("F", "G")):
    net = BooleanNetwork("n")
    net.add_inputs(list("abc"))
    exprs = {"F": "ab + ac", "G": "ab + bc"}
    for name in order:
        net.add_node(name, exprs[name])
    for name in sorted(order):
        net.add_output(name)
    return net


class TestCanonicalKey:
    def test_same_content_same_key(self):
        assert canonical_job_key(_net(), "lshaped", 4) == canonical_job_key(
            _net(), "lshaped", 4
        )

    def test_node_insertion_order_is_canonicalized(self):
        a, b = _net(("F", "G")), _net(("G", "F"))
        assert canonical_network_text(a) == canonical_network_text(b)
        assert canonical_job_key(a, "lshaped", 2) == canonical_job_key(b, "lshaped", 2)

    def test_network_name_ignored(self):
        a, b = _net(), _net()
        b.name = "other"
        assert canonical_job_key(a, "lshaped", 2) == canonical_job_key(b, "lshaped", 2)

    def test_algorithm_and_procs_distinguish(self):
        net = _net()
        keys = {
            canonical_job_key(net, "lshaped", 2),
            canonical_job_key(net, "lshaped", 4),
            canonical_job_key(net, "independent", 2),
        }
        assert len(keys) == 3

    def test_procs_ignored_for_sequential(self):
        net = _net()
        assert canonical_job_key(net, "sequential", 1) == canonical_job_key(
            net, "sequential", 8
        )

    def test_params_order_irrelevant(self):
        net = _net()
        k1 = canonical_job_key(net, "lshaped", 2, params={"seed": 1, "max_rounds": 4})
        k2 = canonical_job_key(net, "lshaped", 2, params={"max_rounds": 4, "seed": 1})
        assert k1 == k2

    def test_params_value_distinguishes(self):
        net = _net()
        assert canonical_job_key(
            net, "lshaped", 2, params={"seed": 1}
        ) != canonical_job_key(net, "lshaped", 2, params={"seed": 2})

    def test_searcher_and_budget_distinguish(self):
        net = _net()
        assert canonical_job_key(
            net, "sequential", 1, searcher="pingpong"
        ) != canonical_job_key(net, "sequential", 1, searcher="exhaustive")
        assert canonical_job_key(
            net, "sequential", 1, node_budget=10
        ) != canonical_job_key(net, "sequential", 1, node_budget=None)

    def test_different_logic_different_key(self):
        other = _net()
        other.set_expression("F", other.nodes["G"])
        assert canonical_job_key(_net(), "lshaped", 2) != canonical_job_key(
            other, "lshaped", 2
        )


class TestResultCache:
    def test_hit_miss_accounting(self):
        metrics = MetricsRegistry()
        cache = ResultCache(capacity=4, metrics=metrics)
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.hits == 1 and cache.misses == 1
        assert metrics.counter("cache_hits").value == 1
        assert metrics.counter("cache_misses").value == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # touch: "b" becomes least recently used
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.evictions == 1

    def test_eviction_metric(self):
        metrics = MetricsRegistry()
        cache = ResultCache(capacity=1, metrics=metrics)
        cache.put("a", 1)
        cache.put("b", 2)
        assert metrics.counter("cache_evictions").value == 1

    def test_none_rejected(self):
        with pytest.raises(ValueError):
            ResultCache().put("k", None)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)

    def test_clear_and_stats(self):
        cache = ResultCache(capacity=8)
        cache.put("a", 1)
        assert len(cache) == 1
        stats = cache.stats()
        assert stats["size"] == 1 and stats["capacity"] == 8
        cache.clear()
        assert len(cache) == 0
