import json

import pytest

from repro.service import (
    FactorizationEngine,
    FactorizationJob,
    JobStatus,
    get_default_engine,
    reset_default_engine,
)


def make_engine(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("backoff", 0.001)
    return FactorizationEngine(**kw)


class TestCacheIntegration:
    def test_second_execution_hits_cache(self):
        engine = make_engine()
        job1 = FactorizationJob(circuit="example")
        job2 = FactorizationJob(circuit="example")
        r1 = engine.execute(job1)
        r2 = engine.execute(job2)
        assert not r1.cache_hit and r2.cache_hit
        assert r1.final_lc == r2.final_lc
        assert engine.cache.hits == 1 and engine.cache.misses == 1

    def test_different_params_do_not_collide(self):
        engine = make_engine()
        r1 = engine.execute(FactorizationJob(circuit="example"))
        r2 = engine.execute(
            FactorizationJob(circuit="example", searcher="exhaustive")
        )
        assert not r2.cache_hit
        assert r1.final_lc is not None and r2.final_lc is not None

    def test_use_cache_false_never_hits(self):
        engine = make_engine(use_cache=False)
        engine.execute(FactorizationJob(circuit="example"))
        r2 = engine.execute(FactorizationJob(circuit="example"))
        assert not r2.cache_hit
        assert engine.cache.hits == 0

    def test_cached_payload_is_copied(self):
        engine = make_engine()
        r1 = engine.execute(
            FactorizationJob(circuit="dalu", algorithm="lshaped",
                             procs=2, scale=0.03)
        )
        r2 = engine.execute(
            FactorizationJob(circuit="dalu", algorithm="lshaped",
                             procs=2, scale=0.03)
        )
        assert r2.cache_hit
        r2.payload.sequential_time = 123.0
        assert r1.payload.sequential_time != 123.0


class TestDegradation:
    def test_budget_exceeded_degrades_to_pingpong(self):
        engine = make_engine()
        job = FactorizationJob(
            circuit="misex3", scale=0.2, searcher="exhaustive", node_budget=5,
        )
        res = engine.execute(job)
        assert res.ok
        assert res.degraded
        assert res.attempts == 2
        assert [s.value for s in res.history] == [
            "PENDING", "RUNNING", "FAILED", "RETRYING", "RUNNING", "DONE",
        ]
        snap = engine.metrics.snapshot()["counters"]
        assert snap["jobs_budget_exceeded"] == 1
        assert snap["jobs_retries"] == 1
        assert snap["jobs_degraded"] == 1

    def test_deadline_timeout_degrades(self):
        engine = make_engine()
        job = FactorizationJob(
            circuit="seq", scale=0.05, searcher="exhaustive", deadline=1e-6,
        )
        res = engine.execute(job)
        assert res.ok and res.degraded
        assert JobStatus.RETRYING in res.history
        assert engine.metrics.counter("jobs_timeouts").value >= 1

    def test_replicated_falls_back_to_sequential(self):
        engine = make_engine()
        job = FactorizationJob(
            circuit="misex3", scale=0.2, algorithm="replicated",
            procs=2, node_budget=5,
        )
        res = engine.execute(job)
        assert res.ok and res.degraded
        assert res.algorithm == "sequential"

    def test_degrade_memo_skips_second_failure(self):
        engine = make_engine()
        job = FactorizationJob(
            circuit="misex3", scale=0.2, searcher="exhaustive", node_budget=5,
        )
        first = engine.execute(job)
        again = FactorizationJob(
            circuit="misex3", scale=0.2, searcher="exhaustive", node_budget=5,
        )
        second = engine.execute(again)
        assert second.ok and second.degraded
        assert second.attempts == 1          # no failed attempt this time
        assert second.cache_hit              # degraded result was cached
        assert second.final_lc == first.final_lc
        assert engine.metrics.counter("degrade_memo_hits").value == 1

    def test_no_degrade_when_disallowed(self):
        engine = make_engine()
        job = FactorizationJob(
            circuit="misex3", scale=0.2, searcher="exhaustive",
            node_budget=5, allow_degrade=False, max_retries=1,
        )
        res = engine.execute(job)
        assert not res.ok
        assert res.status is JobStatus.FAILED
        assert res.attempts == 2
        assert not res.degraded
        from repro.rectangles.search import BudgetExceeded

        assert isinstance(res.exception, BudgetExceeded)


class TestFailures:
    def test_unknown_circuit_fails_job_not_batch(self):
        engine = make_engine(max_retries=0)
        report = engine.run_batch([
            FactorizationJob(circuit="nope"),
            FactorizationJob(circuit="example"),
        ])
        by_circuit = {r.circuit: r for r in report.results}
        assert by_circuit["nope"].status is JobStatus.FAILED
        assert "unknown circuit" in by_circuit["nope"].error
        assert by_circuit["example"].ok

    def test_failed_result_serializes(self):
        engine = make_engine(max_retries=0)
        res = engine.execute(FactorizationJob(circuit="nope"))
        json.dumps(res.to_dict())
        assert res.to_dict()["status"] == "FAILED"


class TestBatch:
    def test_results_in_priority_order(self):
        engine = make_engine(workers=1)
        jobs = [
            FactorizationJob(circuit="example", priority=2),
            FactorizationJob(circuit="misex3", scale=0.1, priority=-1),
            FactorizationJob(circuit="example", priority=0),
        ]
        report = engine.run_batch(jobs)
        assert [r.circuit for r in report.results] == ["misex3", "example", "example"]

    def test_deterministic_under_concurrent_submission(self):
        specs = [
            ("example", "sequential", 1),
            ("dalu", "lshaped", 2),
            ("dalu", "independent", 2),
            ("misex3", "sequential", 1),
            ("dalu", "lshaped", 4),
        ]

        def run(workers, use_cache):
            engine = make_engine(workers=workers, use_cache=use_cache)
            jobs = [
                FactorizationJob(circuit=c, algorithm=a, procs=p, scale=0.03)
                for c, a, p in specs
            ]
            report = engine.run_batch(jobs)
            assert all(r.ok for r in report.results)
            return [(r.circuit, r.algorithm, r.procs, r.final_lc)
                    for r in report.results]

        serial = run(workers=1, use_cache=False)
        concurrent = run(workers=4, use_cache=False)
        cached = run(workers=4, use_cache=True)
        assert serial == concurrent == cached

    def test_second_batch_hits_cache_and_is_faster(self):
        engine = make_engine()
        jobs = lambda: [  # noqa: E731 - jobs are single-use
            FactorizationJob(circuit="dalu", algorithm="lshaped",
                             procs=2, scale=0.03),
            FactorizationJob(circuit="dalu", algorithm="independent",
                             procs=2, scale=0.03),
            FactorizationJob(circuit="example"),
        ]
        first = engine.run_batch(jobs())
        second = engine.run_batch(jobs())
        assert first.cache_hits == 0
        assert second.cache_hits == 3
        assert second.wall_time < first.wall_time
        assert [r.final_lc for r in first.results] == [
            r.final_lc for r in second.results
        ]

    def test_report_render_and_dict(self):
        engine = make_engine()
        report = engine.run_batch([FactorizationJob(circuit="example")])
        text = report.render()
        assert "example" in text and "DONE" in text
        json.dumps(report.to_dict())

    def test_metrics_snapshot_contents(self):
        engine = make_engine()
        engine.run_batch([
            FactorizationJob(circuit="example"),
            FactorizationJob(circuit="example"),
        ])
        snap = engine.metrics.snapshot()
        counters = snap["counters"]
        assert counters["jobs_submitted"] == 2
        assert counters["jobs_completed"] == 2
        assert counters["cache_hits"] == 1
        assert counters["cache_misses"] == 1
        assert snap["histograms"]["job_seconds"]["count"] == 2
        assert snap["histograms"]["batch_seconds"]["count"] == 1


class TestAlgorithms:
    @pytest.mark.parametrize("algorithm", ["independent", "lshaped", "replicated"])
    def test_parallel_payloads(self, algorithm):
        engine = make_engine()
        res = engine.execute(FactorizationJob(
            circuit="dalu", algorithm=algorithm, procs=2, scale=0.03,
        ))
        assert res.ok
        assert res.payload.final_lc <= res.payload.initial_lc
        assert res.payload.parallel_time > 0

    def test_baseline_payload(self):
        engine = make_engine()
        res = engine.execute(FactorizationJob(circuit="example",
                                              algorithm="baseline"))
        assert res.ok
        assert res.payload.time > 0
        assert res.payload.result.final_lc <= 33

    def test_sequential_payload_has_network(self):
        from repro.network.simulate import random_equivalence_check

        engine = make_engine()
        job = FactorizationJob(circuit="example")
        res = engine.execute(job)
        assert res.final_lc == res.payload.network.literal_count()
        assert random_equivalence_check(job.resolve_network(),
                                        res.payload.network)


class TestDefaultEngine:
    def test_singleton_and_reset(self):
        reset_default_engine()
        assert get_default_engine(create=False) is None
        engine = get_default_engine()
        assert get_default_engine() is engine
        reset_default_engine()
        assert get_default_engine(create=False) is None
        # leave a fresh default for other tests
