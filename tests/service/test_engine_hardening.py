"""Engine hardening: path breakers, health/readiness, deadline unwinding.

These are the service-layer chaos guarantees: a path (algorithm ×
circuit) that keeps failing trips its breaker and is short-circuited to
the sequential fallback instead of re-paying its timeout; the health
document reflects breaker state; and a timed-out attempt is *cancelled*,
not leaked as a daemon thread running to completion.
"""

import threading
import time

from repro.service import FactorizationEngine, FactorizationJob
from repro.service.breaker import BreakerState


def make_engine(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("backoff", 0.0)
    return FactorizationEngine(**kw)


def _failing_job(**kw):
    """A job whose only attempt always times out."""
    kw.setdefault("circuit", "seq")
    kw.setdefault("scale", 0.05)
    kw.setdefault("algorithm", "lshaped")
    kw.setdefault("procs", 2)
    kw.setdefault("deadline", 1e-6)
    kw.setdefault("allow_degrade", False)
    kw.setdefault("max_retries", 0)
    return FactorizationJob(**kw)


def _drain_job_attempt_threads(timeout=15.0):
    """Wait for every 'job-attempt' helper thread to unwind."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        lingering = [
            t for t in threading.enumerate()
            if t.name == "job-attempt" and t.is_alive()
        ]
        if not lingering:
            return []
        time.sleep(0.05)
    return lingering


class TestBreakers:
    def test_repeated_failures_open_the_path_breaker(self):
        engine = make_engine(breaker_threshold=2)
        for _ in range(2):
            res = engine.execute(_failing_job())
            assert not res.ok
        assert (
            engine.breakers.get("lshaped:seq").state == BreakerState.OPEN
        )
        assert engine.metrics.counter("breaker_opened").value == 1

    def test_open_breaker_short_circuits_to_sequential(self):
        engine = make_engine(breaker_threshold=2)
        for _ in range(2):
            engine.execute(_failing_job())
        res = engine.execute(
            FactorizationJob(
                circuit="seq", scale=0.05, algorithm="lshaped", procs=2
            )
        )
        assert res.ok and res.degraded
        assert res.algorithm == "sequential"
        assert res.attempts == 1  # no failed attempt: degraded up front
        assert engine.metrics.counter("breaker_short_circuits").value == 1

    def test_sequential_jobs_are_never_short_circuited(self):
        # The fallback path itself must stay reachable even if its own
        # breaker somehow tripped; otherwise a degraded job would loop.
        engine = make_engine()
        for _ in range(5):
            engine.breakers.get("sequential:example").record_failure()
        res = engine.execute(FactorizationJob(circuit="example"))
        assert res.ok and not res.degraded

    def test_success_on_another_path_leaves_breaker_open(self):
        engine = make_engine(breaker_threshold=1)
        engine.execute(_failing_job())
        res = engine.execute(FactorizationJob(circuit="example"))
        assert res.ok
        assert engine.breakers.get("lshaped:seq").state == BreakerState.OPEN


class TestHealth:
    def test_fresh_engine_is_ok_and_ready(self):
        engine = make_engine()
        doc = engine.health()
        assert doc["status"] == "ok"
        assert doc["ready"] is True
        assert doc["workers"] == 2
        assert doc["queue_depth"] == 0
        assert engine.ready()

    def test_one_open_path_reports_degraded_but_ready(self):
        engine = make_engine(breaker_threshold=1)
        engine.execute(_failing_job())
        engine.execute(FactorizationJob(circuit="example"))
        doc = engine.health()
        assert doc["status"] == "degraded"
        assert doc["open_paths"] == ["lshaped:seq"]
        assert engine.ready()

    def test_every_path_open_reports_failing_and_unready(self):
        engine = make_engine(breaker_threshold=1)
        engine.execute(_failing_job())
        doc = engine.health()
        assert doc["status"] == "failing"
        assert doc["ready"] is False
        assert not engine.ready()

    def test_health_counters_surface_failures(self):
        engine = make_engine(breaker_threshold=1)
        engine.execute(_failing_job())
        counters = engine.health()["counters"]
        assert counters["jobs_failed"] == 1
        assert counters["jobs_timeouts"] == 1
        assert counters["breaker_opened"] == 1

    def test_health_embeds_cache_stats(self):
        engine = make_engine()
        engine.execute(FactorizationJob(circuit="example"))
        engine.execute(FactorizationJob(circuit="example"))  # cache hit
        cache = engine.health()["cache"]
        assert cache["hits"] == 1
        assert cache["misses"] == 1
        assert cache["size"] == 1
        assert 0.0 < cache["hit_rate"] <= 1.0

    def test_health_omits_cache_when_disabled(self):
        engine = make_engine(use_cache=False)
        assert "cache" not in engine.health()

    def test_health_reports_pool_liveness(self):
        engine = make_engine()
        pool = engine.health()["pool"]
        assert pool == {"size": 2, "busy": 0, "alive": True}
        engine.execute(FactorizationJob(circuit="example"))
        assert engine.health()["pool"]["busy"] == 0  # back to idle


class TestDeadlineUnwinding:
    def test_timed_out_attempt_is_cancelled_not_leaked(self):
        engine = make_engine()
        res = engine.execute(_failing_job(circuit="dalu", scale=0.3))
        assert not res.ok
        assert "JobTimeout" in res.error
        lingering = _drain_job_attempt_threads()
        assert lingering == [], f"leaked attempt threads: {lingering}"
        # The helper thread confirms it unwound via the cancel scope.
        assert engine.metrics.counter("jobs_cancelled").value >= 1
