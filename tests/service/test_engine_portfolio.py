"""Portfolio scheduling classes through the FactorizationEngine.

Each test installs a fresh process-default selector (and restores the
previous one) so memo state never leaks between tests or into the rest
of the suite.  Jobs vary ``node_budget`` when they must reach the
selector: the engine's result cache answers byte-identical repeats
before the selector ever sees them.
"""

import pytest

from repro.circuits import paper_example_network
from repro.portfolio import (
    GLOBAL_PORTFOLIO_STATS,
    StrategySelector,
    install_default_selector,
)
from repro.service import FactorizationEngine, FactorizationJob, JobStatus
from repro.service.jobs import ALGORITHMS


@pytest.fixture
def fresh_selector():
    sel = StrategySelector()
    previous = install_default_selector(sel)
    yield sel
    install_default_selector(previous)


def make_engine(**kw):
    kw.setdefault("workers", 2)
    kw.setdefault("backoff", 0.001)
    return FactorizationEngine(**kw)


def portfolio_job(klass="latency", **kw):
    kw.setdefault("network", paper_example_network())
    kw.setdefault("procs", 2)
    return FactorizationJob(algorithm=f"portfolio:{klass}", **kw)


class TestAlgorithmRegistration:
    def test_portfolio_classes_are_registered(self):
        assert "portfolio:latency" in ALGORITHMS
        assert "portfolio:quality" in ALGORITHMS

    def test_unknown_class_rejected_at_job_construction(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            FactorizationJob(algorithm="portfolio:cheapest")


class TestPortfolioExecution:
    def test_latency_job_runs_to_done(self, fresh_selector):
        engine = make_engine()
        res = engine.execute(portfolio_job("latency"))
        assert res.ok
        assert res.status is JobStatus.DONE
        assert res.payload.klass == "latency"
        assert res.payload.winner
        assert res.final_lc is not None
        assert res.final_lc <= res.initial_lc
        assert not res.payload.memoized

    def test_quality_job_runs_to_done(self, fresh_selector):
        engine = make_engine()
        res = engine.execute(portfolio_job("quality"))
        assert res.ok
        assert res.payload.klass == "quality"
        finished = [r.final_lc for r in res.payload.lanes
                    if r.final_lc is not None]
        assert res.final_lc == min(finished)

    def test_second_job_takes_selector_fast_path(self, fresh_selector):
        engine = make_engine()
        first = engine.execute(portfolio_job("latency", node_budget=90000))
        # A different node_budget misses the result cache but lands in
        # the same circuit family, so the selector answers.
        second = engine.execute(portfolio_job("latency", node_budget=80000))
        assert not first.cache_hit and not second.cache_hit
        assert not first.payload.memoized
        assert second.payload.memoized
        assert second.payload.winner == first.payload.winner
        assert len(second.payload.lanes) == 1
        counters = engine.metrics.snapshot()["counters"]
        assert counters["selector_hits"] == 1
        assert counters["portfolio_races"] == 1

    def test_health_exposes_portfolio_counters(self, fresh_selector):
        engine = make_engine()
        before = GLOBAL_PORTFOLIO_STATS.snapshot()["portfolio_races"]
        engine.execute(portfolio_job("latency"))
        doc = engine.health()
        assert "portfolio" in doc
        assert doc["portfolio"]["portfolio_races"] == before + 1
        assert set(doc["portfolio"]) >= {
            "portfolio_races", "portfolio_cancelled_lanes",
            "selector_hits", "portfolio_lane_wins",
        }

    def test_result_cache_still_wins_over_selector(self, fresh_selector):
        engine = make_engine()
        first = engine.execute(portfolio_job("latency"))
        repeat = engine.execute(portfolio_job("latency"))
        assert not first.cache_hit and repeat.cache_hit
        assert repeat.final_lc == first.final_lc
        # The cached repeat never re-raced, so the selector saw one race.
        assert fresh_selector.stats()["records"] == 1
