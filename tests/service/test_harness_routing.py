"""Table runs route through the shared engine and reuse cached cells."""

import pytest

from repro.harness import experiments
from repro.service import JobStatus, reset_default_engine


@pytest.fixture(autouse=True)
def fresh_engine():
    reset_default_engine()
    yield
    reset_default_engine()


class TestTableRouting:
    def test_tables_share_cached_cells(self):
        experiments.run_table6(scale=0.03, circuits=["dalu"], procs=(2,))
        engine = experiments.table_engine()
        assert engine.cache.hits == 0
        # Table 4 re-runs the same baseline and the same lshaped@2 cell.
        experiments.run_table4(scale=0.03, circuits=["dalu"], ways=(2,))
        assert engine.cache.hits >= 2

    def test_engine_run_reraises_budget_exceeded(self):
        from repro.rectangles.search import BudgetExceeded

        net = experiments.get_circuit("dalu", 0.03)
        with pytest.raises(BudgetExceeded):
            experiments._engine_run("replicated", net, 2, search_budget=5)
        # table jobs never degrade: the failure is terminal on attempt 1
        counters = experiments.table_engine().metrics.snapshot()["counters"]
        assert counters["jobs_failed"] == 1
        assert counters.get("jobs_retries", 0) == 0

    def test_table2_budget_exceeded_renders_dnf(self):
        table = experiments.run_table2(
            scale=0.03, circuits=["dalu"], procs=(2,), search_budget=5,
        )
        assert "budget exceeded" in table.render()

    def test_engine_baseline_matches_direct_call(self):
        from repro.parallel.common import sequential_baseline

        net = experiments.get_circuit("dalu", 0.03)
        via_engine = experiments._engine_baseline(net)
        direct = sequential_baseline(net)
        assert via_engine.result.final_lc == direct.result.final_lc
        assert via_engine.time == direct.time

    def test_table_jobs_complete_cleanly(self):
        experiments.run_table3(scale=0.03, circuits=["dalu"], procs=(2,))
        counters = experiments.table_engine().metrics.snapshot()["counters"]
        assert counters["jobs_completed"] == counters["jobs_submitted"]
        assert counters.get("jobs_degraded", 0) == 0
