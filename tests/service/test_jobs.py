import pytest

from repro.service.jobs import FactorizationJob, JobQueue, JobStatus


class TestFactorizationJob:
    def test_defaults_and_history(self):
        job = FactorizationJob(circuit="example")
        assert job.status is JobStatus.PENDING
        assert job.history == [JobStatus.PENDING]

    def test_transition_appends_history(self):
        job = FactorizationJob(circuit="example")
        job.transition(JobStatus.RUNNING)
        job.transition(JobStatus.FAILED)
        job.transition(JobStatus.RETRYING)
        job.transition(JobStatus.RUNNING)
        job.transition(JobStatus.DONE)
        assert job.status is JobStatus.DONE
        assert [s.value for s in job.history] == [
            "PENDING", "RUNNING", "FAILED", "RETRYING", "RUNNING", "DONE",
        ]

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            FactorizationJob(circuit="example", algorithm="quantum")

    def test_resolve_network_by_name(self):
        job = FactorizationJob(circuit="example")
        net = job.resolve_network()
        assert net.literal_count() == 33
        assert job.resolve_network() is net  # memoized

    def test_resolve_unknown_circuit(self):
        from repro.circuits import UnknownCircuitError

        with pytest.raises(UnknownCircuitError):
            FactorizationJob(circuit="nope").resolve_network()

    def test_describe(self):
        job = FactorizationJob(circuit="dalu", algorithm="lshaped", procs=4)
        assert job.describe() == "dalu/lshaped@4p"
        assert FactorizationJob(circuit="dalu").describe() == "dalu/sequential"


class TestJobQueue:
    def test_priority_order(self):
        q = JobQueue()
        low = FactorizationJob(circuit="a.eqn", priority=5)
        high = FactorizationJob(circuit="b.eqn", priority=-1)
        mid = FactorizationJob(circuit="c.eqn", priority=0)
        for j in (low, high, mid):
            q.put(j)
        assert q.get() is high
        assert q.get() is mid
        assert q.get() is low

    def test_fifo_within_priority(self):
        q = JobQueue()
        jobs = [FactorizationJob(circuit=f"{i}.eqn") for i in range(5)]
        for j in jobs:
            q.put(j)
        assert q.drain() == jobs

    def test_get_empty_returns_none(self):
        q = JobQueue()
        assert q.get() is None
        assert q.get(timeout=0.01) is None

    def test_len_and_empty(self):
        q = JobQueue()
        assert q.empty()
        q.put(FactorizationJob(circuit="x.eqn"))
        assert len(q) == 1 and not q.empty()
