import threading

from repro.service.metrics import MetricsRegistry


class TestCounter:
    def test_inc(self):
        reg = MetricsRegistry()
        reg.inc("jobs")
        reg.inc("jobs", 4)
        assert reg.counter("jobs").value == 5

    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_thread_safety(self):
        reg = MetricsRegistry()

        def worker():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n").value == 8000


class TestHistogram:
    def test_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        summ = h.summary()
        assert summ["count"] == 4
        assert summ["min"] == 1.0
        assert summ["max"] == 4.0
        assert summ["mean"] == 2.5
        assert summ["total"] == 10.0

    def test_empty_summary(self):
        summ = MetricsRegistry().histogram("empty").summary()
        assert summ["count"] == 0
        assert summ["mean"] is None

    def test_percentile(self):
        reg = MetricsRegistry()
        h = reg.histogram("p")
        for v in range(101):
            h.observe(float(v))
        assert h.percentile(0) == 0.0
        assert h.percentile(50) == 50.0
        assert h.percentile(100) == 100.0
        assert MetricsRegistry().histogram("e").percentile(50) is None


class TestTimer:
    def test_timer_observes_into_histogram(self):
        reg = MetricsRegistry()
        with reg.timer("work") as t:
            pass
        assert t.elapsed is not None and t.elapsed >= 0.0
        assert reg.histogram("work_seconds").count == 1


class TestSnapshot:
    def test_snapshot_contents(self):
        reg = MetricsRegistry()
        reg.inc("a", 2)
        reg.histogram("h").observe(1.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"a": 2}
        assert snap["histograms"]["h"]["count"] == 1
        assert snap["histograms"]["h"]["total"] == 1.5

    def test_snapshot_is_json_serializable(self):
        import json

        reg = MetricsRegistry()
        reg.inc("a")
        reg.histogram("h").observe(0.25)
        json.dumps(reg.snapshot())

    def test_render_mentions_metrics(self):
        reg = MetricsRegistry()
        reg.inc("cache_hits", 3)
        reg.histogram("job_seconds").observe(0.5)
        text = reg.render()
        assert "cache_hits" in text
        assert "job_seconds" in text
