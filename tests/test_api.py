"""Public-API surface tests: the README quickstart must keep working."""

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_readme_quickstart():
    net = repro.BooleanNetwork("demo")
    net.add_inputs(list("abcdefg"))
    net.add_node("F", "af + bf + ag + cg + ade + bde + cde")
    net.add_output("F")
    result = repro.kernel_extract(net)
    assert result.initial_lc == 17
    assert result.final_lc < result.initial_lc


def test_parallel_quickstart():
    net = repro.paper_example_network()
    result = repro.lshaped_kernel_extract(net, nprocs=2)
    base = repro.sequential_baseline(net)
    assert result.final_lc <= 23
    assert base.time > 0


def test_make_circuit_exported():
    net = repro.make_circuit("misex3", scale=0.1)
    assert net.literal_count() > 100
