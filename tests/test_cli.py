import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_factor_defaults(self):
        args = build_parser().parse_args(["factor", "example"])
        assert args.algorithm == "sequential"
        assert args.procs == 4


class TestFactorCommand:
    def test_sequential_on_example(self, capsys):
        assert main(["factor", "example"]) == 0
        out = capsys.readouterr().out
        assert "33 ->" in out

    @pytest.mark.parametrize("alg", ["replicated", "independent", "lshaped"])
    def test_parallel_algorithms(self, alg, capsys):
        assert main(["factor", "example", "--algorithm", alg, "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_writes_eqn(self, tmp_path, capsys):
        out_path = tmp_path / "out.eqn"
        assert main(["factor", "example", "--output", str(out_path)]) == 0
        from repro.network.eqn import load_eqn

        net = load_eqn(str(out_path))
        assert net.literal_count() <= 22

    def test_reads_eqn_file(self, tmp_path, eq1_network, capsys):
        from repro.network.eqn import save_eqn

        p = tmp_path / "in.eqn"
        save_eqn(eq1_network, str(p))
        assert main(["factor", str(p)]) == 0

    def test_reads_pla_file(self, tmp_path, capsys):
        p = tmp_path / "in.pla"
        p.write_text(".i 3\n.o 1\n.p 2\n110 1\n011 1\n.e\n")
        assert main(["factor", str(p)]) == 0

    def test_unknown_circuit(self):
        with pytest.raises(SystemExit):
            main(["factor", "not-a-circuit"])


class TestInfoCommand:
    def test_info_example(self, capsys):
        assert main(["info", "example"]) == 0
        out = capsys.readouterr().out
        assert "literals: 33" in out
        assert "KC matrix" in out

    def test_info_suite_scaled(self, capsys):
        assert main(["info", "dalu", "--scale", "0.05"]) == 0
        assert "nodes" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_runs(self, capsys, tmp_path):
        out_json = tmp_path / "cmp.json"
        assert main([
            "compare", "dalu", "--scale", "0.05", "--procs", "2",
            "--json", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "lshaped" in out
        import json

        records = json.loads(out_json.read_text())
        assert any(r["algorithm"] == "independent" for r in records)
        for r in records:
            assert r["final_lc"] <= r["initial_lc"]


class TestStatsCommand:
    def test_stats(self, capsys):
        assert main(["stats", "example"]) == 0
        assert "depth=1" in capsys.readouterr().out


class TestRunTableCommand:
    def test_table4_tiny(self, capsys):
        # miniature scale keeps CI fast; full scale lives in benchmarks/
        assert main(["run-table", "eq3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 3" in out
