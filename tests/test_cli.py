import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit) as exc:
            main([])
        assert exc.value.code == 2

    def test_factor_defaults(self):
        args = build_parser().parse_args(["factor", "example"])
        assert args.algorithm == "sequential"
        assert args.procs == 4
        assert args.cache is False

    def test_list_circuits(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "example" in out
        assert "dalu" in out and "ex1010" in out

    def test_unknown_table_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["run-table", "table99"])
        assert exc.value.code == 2
        assert "table99" in capsys.readouterr().err


class TestFactorCommand:
    def test_sequential_on_example(self, capsys):
        assert main(["factor", "example"]) == 0
        out = capsys.readouterr().out
        assert "33 ->" in out

    @pytest.mark.parametrize("alg", ["replicated", "independent", "lshaped"])
    def test_parallel_algorithms(self, alg, capsys):
        assert main(["factor", "example", "--algorithm", alg, "--procs", "2"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out

    def test_writes_eqn(self, tmp_path, capsys):
        out_path = tmp_path / "out.eqn"
        assert main(["factor", "example", "--output", str(out_path)]) == 0
        from repro.network.eqn import load_eqn

        net = load_eqn(str(out_path))
        assert net.literal_count() <= 22

    def test_reads_eqn_file(self, tmp_path, eq1_network, capsys):
        from repro.network.eqn import save_eqn

        p = tmp_path / "in.eqn"
        save_eqn(eq1_network, str(p))
        assert main(["factor", str(p)]) == 0

    def test_reads_pla_file(self, tmp_path, capsys):
        p = tmp_path / "in.pla"
        p.write_text(".i 3\n.o 1\n.p 2\n110 1\n011 1\n.e\n")
        assert main(["factor", str(p)]) == 0

    def test_unknown_circuit_exits_2_with_choices(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["factor", "not-a-circuit"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "not-a-circuit" in err
        assert "dalu" in err and "example" in err

    def test_factor_cached_roundtrip(self, capsys):
        from repro.service import get_default_engine, reset_default_engine

        reset_default_engine()
        try:
            assert main(["factor", "example", "--cache"]) == 0
            assert "cache        : miss" in capsys.readouterr().out
            assert main(["factor", "example", "--cache"]) == 0
            assert "cache        : hit" in capsys.readouterr().out
            assert get_default_engine().cache.hits == 1
        finally:
            reset_default_engine()

    def test_factor_cached_parallel_reports_speedup(self, capsys):
        from repro.service import reset_default_engine

        reset_default_engine()
        try:
            assert main([
                "factor", "dalu", "--scale", "0.03",
                "--algorithm", "lshaped", "--procs", "2", "--cache",
            ]) == 0
            out = capsys.readouterr().out
            assert "speedup" in out and "cache" in out
        finally:
            reset_default_engine()


class TestInfoCommand:
    def test_info_example(self, capsys):
        assert main(["info", "example"]) == 0
        out = capsys.readouterr().out
        assert "literals: 33" in out
        assert "KC matrix" in out

    def test_info_suite_scaled(self, capsys):
        assert main(["info", "dalu", "--scale", "0.05"]) == 0
        assert "nodes" in capsys.readouterr().out


class TestCompareCommand:
    def test_compare_runs(self, capsys, tmp_path):
        out_json = tmp_path / "cmp.json"
        assert main([
            "compare", "dalu", "--scale", "0.05", "--procs", "2",
            "--json", str(out_json),
        ]) == 0
        out = capsys.readouterr().out
        assert "lshaped" in out
        import json

        records = json.loads(out_json.read_text())
        assert any(r["algorithm"] == "independent" for r in records)
        for r in records:
            assert r["final_lc"] <= r["initial_lc"]


class TestStatsCommand:
    def test_stats(self, capsys):
        assert main(["stats", "example"]) == 0
        assert "depth=1" in capsys.readouterr().out


class TestBatchCommand:
    MANIFEST = {
        "jobs": [
            {"circuit": "example", "algorithm": "sequential"},
            {"circuit": "dalu", "algorithm": "lshaped", "procs": 2,
             "scale": 0.03},
            {"circuit": "dalu", "algorithm": "independent", "procs": 2,
             "scale": 0.03},
            {"circuit": "misex3", "algorithm": "sequential", "scale": 0.1},
            {"circuit": "example", "algorithm": "sequential",
             "searcher": "exhaustive"},
        ]
    }

    def test_json_manifest_with_repeat(self, tmp_path, capsys):
        import json

        manifest = tmp_path / "batch.json"
        manifest.write_text(json.dumps(self.MANIFEST))
        out_json = tmp_path / "out.json"
        assert main(["batch", str(manifest), "--repeat", "2",
                     "--json", str(out_json)]) == 0
        out = capsys.readouterr().out
        assert "pass wall times" in out
        assert "cache_hits" in out
        payload = json.loads(out_json.read_text())
        assert len(payload["passes"]) == 2
        first, second = payload["passes"]
        assert all(r["status"] == "DONE" for r in second["results"])
        assert sum(r["cache_hit"] for r in first["results"]) == 0
        assert sum(r["cache_hit"] for r in second["results"]) == 5
        assert second["wall_time"] < first["wall_time"]

    def test_line_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "batch.txt"
        manifest.write_text(
            "# circuit algorithm options\n"
            "example sequential\n"
            "dalu lshaped procs=2 scale=0.03\n"
        )
        assert main(["batch", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "2/2 done" in out

    def test_degrading_job_completes(self, tmp_path, capsys):
        manifest = tmp_path / "batch.txt"
        manifest.write_text(
            "misex3 sequential scale=0.1 searcher=exhaustive node_budget=5\n"
            "example sequential\n"
        )
        assert main(["batch", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "DONE*" in out
        assert "jobs_degraded" in out

    def test_failing_job_sets_exit_code(self, tmp_path, capsys):
        manifest = tmp_path / "batch.txt"
        manifest.write_text("no-such-circuit sequential\nexample sequential\n")
        assert main(["batch", str(manifest)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_missing_manifest(self, capsys):
        assert main(["batch", "/does/not/exist.json"]) == 2
        assert "cannot read manifest" in capsys.readouterr().err

    def test_empty_manifest(self, tmp_path, capsys):
        manifest = tmp_path / "empty.txt"
        manifest.write_text("# nothing here\n")
        assert main(["batch", str(manifest)]) == 2
        assert "no jobs" in capsys.readouterr().err

    def test_malformed_line(self, tmp_path):
        manifest = tmp_path / "bad.txt"
        manifest.write_text("onlyonetoken\n")
        with pytest.raises(SystemExit):
            main(["batch", str(manifest)])

    def test_example_manifest_parses(self):
        import json
        import pathlib

        path = pathlib.Path(__file__).parent.parent / "examples" / "batch_manifest.json"
        from repro.cli import _manifest_jobs, _parse_manifest_entries

        entries = _parse_manifest_entries(path.read_text())
        jobs = _manifest_jobs(entries, default_scale=1.0)
        assert len(jobs) >= 5
        assert json.loads(path.read_text())  # stays valid JSON


class TestRunTableCommand:
    def test_table4_tiny(self, capsys):
        # miniature scale keeps CI fast; full scale lives in benchmarks/
        assert main(["run-table", "eq3", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Eq. 3" in out


class TestFuzzCommand:
    def test_clean_run_exits_zero(self, capsys):
        assert main(["fuzz", "--runs", "3", "--seed", "0", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "3 runs" in out and "0 failure(s)" in out

    def test_filters_and_check(self, capsys):
        assert main([
            "fuzz", "--runs", "2", "--seed", "1", "--quiet", "--check",
            "--paths", "seq-pingpong", "--cores", "bit",
        ]) == 0
        assert "2 path×core checks" in capsys.readouterr().out

    def test_progress_lines_by_default(self, capsys):
        assert main(["fuzz", "--runs", "1",
                     "--paths", "seq-pingpong", "--cores", "bit"]) == 0
        assert "family=" in capsys.readouterr().out

    def test_unknown_path_exits_2(self, capsys):
        assert main(["fuzz", "--runs", "1", "--paths", "bogus"]) == 2
        assert "unknown factorization path" in capsys.readouterr().err

    def test_repro_dir_implies_shrink(self, tmp_path):
        args = build_parser().parse_args(
            ["fuzz", "--repro-dir", str(tmp_path)]
        )
        assert args.repro_dir == str(tmp_path) and not args.shrink


class TestPortfolioCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["portfolio", "example"])
        assert args.klass == "latency"
        assert args.procs == "2,4"
        assert args.scale == 1.0
        assert args.budget == 5_000_000
        assert not args.no_memo and args.memo_dir is None

    def test_json_race_reports_equivalent(self, capsys):
        import json

        code = main(["portfolio", "example", "--no-memo", "--json",
                     "--procs", "2"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["class"] == "latency"
        assert doc["equivalent"] is True
        assert doc["memoized"] is False
        assert doc["final_lc"] <= doc["initial_lc"]
        won = [l for l in doc["lanes"] if l["status"] == "won"]
        assert len(won) == 1 and won[0]["lane"] == doc["winner"]

    def test_table_mode_prints_verdict(self, capsys):
        assert main(["portfolio", "example", "--no-memo",
                     "--procs", "2", "--class", "quality"]) == 0
        out = capsys.readouterr().out
        assert "Portfolio race" in out
        assert "winner" in out
        assert "verdict      : ok" in out

    def test_bad_procs_exits_2(self, capsys):
        assert main(["portfolio", "example", "--procs", "two"]) == 2
        assert "bad --procs" in capsys.readouterr().err

    def test_unknown_class_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(
                ["portfolio", "example", "--class", "cheapest"]
            )
        assert exc.value.code == 2
