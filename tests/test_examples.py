"""Every example script must run clean (smoke tests, miniature inputs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "initial literal count: 33" in out
    assert "functionally equivalent to the original: True" in out


def test_paper_walkthrough():
    out = run_example("paper_walkthrough.py")
    assert "Equation 1" in out
    assert "saving 8" in out or "re-check" in out
    assert "26 literals" in out


def test_compare_parallel_strategies():
    out = run_example("compare_parallel_strategies.py", "dalu", "0.1")
    assert "lshaped" in out
    assert "independent" in out


def test_custom_circuit_flow(tmp_path):
    out = run_example("custom_circuit_flow.py")
    assert "equivalent to original: True" in out


def test_objective_driven():
    out = run_example("objective_driven_extraction.py", "dalu", "0.1")
    assert "three objectives" in out
    assert "equivalent to input: True" in out
