import pytest
from hypothesis import given, settings, strategies as st

from repro.network.boolean_network import BooleanNetwork
from repro.network.simulate import exhaustive_equivalence_check, random_equivalence_check
from repro.twolevel.cover import (
    PCover,
    cofactor,
    cofactor_by_cube,
    cube_cofactor,
    from_sop,
    pcube_contains,
    to_sop,
)
from repro.twolevel.minimize import minimize_cover, minimize_network, minimize_sop
from repro.twolevel.tautology import cover_contains_cube, is_tautology


def net_with(expr):
    net = BooleanNetwork()
    net.add_inputs(list("abcde"))
    net.add_node("F", expr)
    net.add_output("F")
    return net


class TestCoverConversion:
    def test_pairs_complements(self):
        net = net_with("ab' + a'b")
        cover = from_sop(net.nodes["F"], net.table)
        assert cover.variables == ["a", "b"]
        assert set(cover.cubes) == {(1, 0), (0, 1)}

    def test_roundtrip(self):
        net = net_with("ab' + a'b + cd")
        f = net.nodes["F"]
        cover = from_sop(f, net.table)
        assert to_sop(cover, net.table) == f

    def test_contradictory_cube_dropped(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("F", [[net.table.id_of("a"), net.table.id_of("a'")]])
        cover = from_sop(net.nodes["F"], net.table)
        assert cover.cubes == []

    def test_literal_count(self):
        net = net_with("ab + c")
        cover = from_sop(net.nodes["F"], net.table)
        assert cover.literal_count() == 3


class TestCofactor:
    def test_cube_cofactor_compatible(self):
        assert cube_cofactor((1, 2, 0), 0, 1) == (2, 2, 0)
        assert cube_cofactor((2, 2, 0), 0, 1) == (2, 2, 0)

    def test_cube_cofactor_conflict(self):
        assert cube_cofactor((1, 2, 0), 0, 0) is None

    def test_cover_cofactor(self):
        cubes = [(1, 1), (0, 2)]
        assert cofactor(cubes, 0, 1) == [(2, 1)]
        assert cofactor(cubes, 0, 0) == [(2, 2)]

    def test_cofactor_by_cube(self):
        cubes = [(1, 1), (0, 2)]
        assert cofactor_by_cube(cubes, (1, 2)) == [(2, 1)]


class TestTautology:
    def test_universal_cube(self):
        assert is_tautology([(2, 2)], 2)

    def test_complement_pair(self):
        # a + a' = 1
        assert is_tautology([(1, 2), (0, 2)], 2)

    def test_full_minterm_cover(self):
        assert is_tautology([(0, 0), (0, 1), (1, 0), (1, 1)], 2)

    def test_not_tautology(self):
        assert not is_tautology([(1, 2)], 2)
        assert not is_tautology([(1, 1), (0, 0)], 2)

    def test_empty_cover(self):
        assert not is_tautology([], 3)

    def test_three_var_tautology(self):
        # ab + a' + b' = 1
        assert is_tautology([(1, 1, 2), (0, 2, 2), (2, 0, 2)], 3)

    def test_containment(self):
        # ab ⊆ a
        assert cover_contains_cube([(1, 2)], (1, 1), 2)
        # a ⊄ ab
        assert not cover_contains_cube([(1, 1)], (1, 2), 2)
        # b ⊆ ab + a'b
        assert cover_contains_cube([(1, 1), (0, 1)], (2, 1), 2)


class TestMinimize:
    def test_classic_merge(self):
        net = net_with("ab + ab'")
        ref = net.copy()
        minimize_network(net)
        assert net.nodes["F"] == ((net.table.get("a"),),)
        assert exhaustive_equivalence_check(ref, net, outputs=["F"])

    def test_consensus_redundancy(self):
        # ab + a'c + bc : bc is redundant (consensus)
        net = net_with("ab + a'c + bc")
        ref = net.copy()
        minimize_network(net)
        assert len(net.nodes["F"]) == 2
        assert exhaustive_equivalence_check(ref, net, outputs=["F"])

    def test_expansion_absorbs(self):
        # ab + a'b + ab' = a + b
        net = net_with("ab + a'b + ab'")
        ref = net.copy()
        minimize_network(net)
        assert net.literal_count("F") == 2
        assert exhaustive_equivalence_check(ref, net, outputs=["F"])

    def test_already_minimal_untouched(self):
        net = net_with("ab + cd")
        f = net.nodes["F"]
        assert minimize_sop(f, net.table) == f

    def test_constants_pass_through(self):
        net = net_with("ab")
        assert minimize_sop((), net.table) == ()
        assert minimize_sop(((),), net.table) == ((),)

    def test_contradictory_only_cover_becomes_zero(self):
        net = BooleanNetwork()
        net.add_inputs(["a"])
        net.add_node("F", [[net.table.id_of("a"), net.table.id_of("a'")]])
        assert minimize_sop(net.nodes["F"], net.table) == ()

    def test_support_bound_skips(self):
        net = net_with("ab + cd")
        f = net.nodes["F"]
        assert minimize_sop(f, net.table, max_support=1) == f

    def test_never_increases_literals(self, small_pla_circuit):
        net = small_pla_circuit.copy()
        before = net.literal_count()
        saved = minimize_network(net)
        assert net.literal_count() == before - saved
        assert saved >= 0

    def test_network_function_preserved(self, small_pla_circuit):
        net = small_pla_circuit.copy()
        minimize_network(net)
        assert random_equivalence_check(
            small_pla_circuit, net, vectors=256, outputs=small_pla_circuit.outputs
        )


# Property tests: random single-output covers over 5 variables.
phases = st.integers(min_value=0, max_value=2)
pcubes = st.tuples(phases, phases, phases, phases, phases)


def cover_to_net(cubes):
    net = BooleanNetwork()
    net.add_inputs([f"v{i}" for i in range(5)])
    expr = []
    for c in cubes:
        lits = []
        for i, p in enumerate(c):
            if p == 1:
                lits.append(net.table.id_of(f"v{i}"))
            elif p == 0:
                lits.append(net.table.id_of(f"v{i}'"))
        expr.append(lits)
    net.add_node("F", expr)
    net.add_output("F")
    return net


class TestMinimizeProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(pcubes, min_size=1, max_size=8))
    def test_function_preserved(self, cubes):
        net = cover_to_net(cubes)
        ref = net.copy()
        minimize_network(net)
        assert exhaustive_equivalence_check(ref, net, outputs=["F"])

    @settings(max_examples=60, deadline=None)
    @given(st.lists(pcubes, min_size=1, max_size=8))
    def test_never_grows(self, cubes):
        net = cover_to_net(cubes)
        before = net.literal_count()
        minimize_network(net)
        assert net.literal_count() <= before

    @settings(max_examples=60, deadline=None)
    @given(st.lists(pcubes, min_size=1, max_size=8))
    def test_tautology_matches_truth_table(self, cubes):
        net = cover_to_net(cubes)
        from repro.network.simulate import evaluate

        width = 1 << 5
        assignment = {}
        for i in range(5):
            block = (1 << (1 << i)) - 1
            pattern = 0
            for start in range(1 << i, width, 1 << (i + 1)):
                pattern |= block << start
            assignment[f"v{i}"] = pattern
        truth = evaluate(net, assignment, width=width)["F"]
        from repro.twolevel.cover import from_sop
        from repro.twolevel.tautology import is_tautology

        cover = from_sop(net.nodes["F"], net.table)
        # pad cover to the full 5-var space for the check
        taut = (
            is_tautology(cover.cubes, cover.nvars)
            if cover.cubes and cover.nvars
            else net.nodes["F"] == ((),)
        )
        if cover.cubes and cover.nvars < 5 and taut:
            # tautology over the node's support is tautology, period
            pass
        assert taut == (truth == (1 << width) - 1)
