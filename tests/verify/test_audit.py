"""Invariant audits: clean structures pass, corruption raises, gating."""

import pytest

from repro.parallel.cubestate import CubeStateStore, CubeStatus
from repro.rectangles.kcmatrix import KCMatrix, LabelAllocator
from repro.verify import InvariantViolation, audit, set_audits


@pytest.fixture
def audits_on():
    prev = audit._enabled
    set_audits(True)
    yield
    set_audits(prev)


def _small_matrix() -> KCMatrix:
    mat = KCMatrix()
    alloc = LabelAllocator()
    mat.add_row(1, "F", (10,))
    mat.add_row(2, "F", (11,))
    mat.add_row(3, "G", ())
    c1 = mat.ensure_col((20,), alloc)
    c2 = mat.ensure_col((21, 22), alloc)
    for r in (1, 2, 3):
        mat.add_entry(r, c1)
    mat.add_entry(1, c2)
    return mat


class TestGating:
    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.setenv(audit.ENV_VAR, "1")
        set_audits(None)  # re-read the environment
        assert audit.enabled()
        monkeypatch.setenv(audit.ENV_VAR, "0")
        set_audits(None)
        assert not audit.enabled()

    def test_set_audits_overrides_env(self, monkeypatch):
        monkeypatch.setenv(audit.ENV_VAR, "0")
        set_audits(True)
        try:
            assert audit.enabled()
        finally:
            set_audits(None)

    def test_off_by_default_means_corruption_is_silent(self):
        prev = audit._enabled
        set_audits(False)
        try:
            mat = _small_matrix()
            mat.by_col.clear()  # massive corruption
            mat.add_row(9, "H", ())  # mutator runs its audit only if enabled
        finally:
            set_audits(prev)


class TestKCMatrixAudits:
    def test_clean_matrix_passes(self, audits_on):
        mat = _small_matrix()  # every mutator self-audits on the way
        audit.audit_kcmatrix(mat)

    def test_mutators_audit_their_delta(self, audits_on):
        mat = _small_matrix()
        mat.remove_row(2)
        mat.remove_col(mat.col_of_cube[(21, 22)])
        audit.audit_kcmatrix(mat)

    @pytest.mark.parametrize(
        "corrupt, msg",
        [
            (lambda m: m.by_col[next(iter(m.by_col))].clear(),
             "adjacency"),
            (lambda m: m.entries.update(
                {next(iter(m.entries)): (99, 98, 97)}), "cube"),
            (lambda m: m.col_of_cube.update({(77,): 12345}), "col_of_cube"),
            (lambda m: m.node_rows["F"].add(999), "node_rows"),
            (lambda m: m.by_row.update({555: set()}), "by_row keys"),
        ],
    )
    def test_corruption_detected(self, corrupt, msg):
        mat = _small_matrix()
        corrupt(mat)
        with pytest.raises(InvariantViolation, match=msg):
            audit.audit_kcmatrix(mat)

    def test_bitview_parity_clean(self):
        mat = _small_matrix()
        view = mat.bitview()
        audit.audit_bitview(mat, view)

    def test_bitview_parity_detects_stale_view(self):
        mat = _small_matrix()
        view = mat.bitview()
        mat.add_row(4, "G", (12,))  # view no longer mirrors the matrix
        with pytest.raises(InvariantViolation):
            audit.audit_bitview(mat, view)

    def test_bitview_detects_corrupted_masks(self):
        mat = _small_matrix()
        view = mat.bitview()
        view.row_cols[0] = 0
        with pytest.raises(InvariantViolation, match="mask"):
            audit.audit_bitview(mat, view)

    def test_mutation_audit_fires_at_the_faulty_operation(self, audits_on):
        mat = _small_matrix()
        # Sabotage an index, then perform the next mutation touching it:
        # the audit localizes the breach to that operation instead of
        # letting it surface later as a wrong factorization.
        mat.node_rows["G"].add(1)  # row 1 belongs to F, not G
        with pytest.raises(InvariantViolation, match="still lists"):
            mat.remove_row(1)


class TestCubeStateAudits:
    def test_clean_protocol_run_passes(self, audits_on):
        store = CubeStateStore()
        refs = [("F", (1, 2)), ("F", (3,)), ("G", (4, 5, 6))]
        store.cover(refs, pid=0)
        store.uncover(refs[:1], pid=0)
        store.cover(refs[:1], pid=1)
        store.divide(refs[1:])
        audit.audit_cubestate(store)

    def test_foreign_claim_is_not_stolen(self, audits_on):
        store = CubeStateStore()
        ref = ("F", (1, 2))
        store.cover([ref], pid=0)
        store.cover([ref], pid=1)  # must silently lose, not steal
        assert store.record(ref).owner == 0
        assert store.value(ref, asking_pid=1) == 0

    def test_free_record_with_owner_flagged(self):
        store = CubeStateStore()
        ref = ("F", (1, 2))
        rec = store.record(ref)
        rec.owner = 3  # FREE cubes carry no owner
        with pytest.raises(InvariantViolation, match="FREE"):
            audit.audit_cubestate(store)

    def test_covered_record_with_wrong_value_flagged(self):
        store = CubeStateStore()
        ref = ("F", (1, 2))
        store.cover([ref], pid=0)
        store.record(ref).trueval = 99
        with pytest.raises(InvariantViolation, match="COVERED"):
            audit.audit_cubestate(store)

    def test_divided_record_with_value_flagged(self):
        store = CubeStateStore()
        ref = ("F", (1, 2))
        store.divide([ref])
        store.record(ref).trueval = 2
        with pytest.raises(InvariantViolation, match="DIVIDED"):
            audit.audit_cubestate(store)

    def test_double_cover_transition_flagged(self):
        store = CubeStateStore()
        ref = ("F", (1, 2))
        store.cover([ref], pid=0)
        rec = store.record(ref)
        rec.owner = 1  # simulate a protocol bug handing the claim over
        with pytest.raises(InvariantViolation, match="double cover"):
            audit.audit_cover_transition(ref, (CubeStatus.COVERED, 0), rec, 1)

    def test_resurrected_divided_cube_flagged(self):
        store = CubeStateStore()
        ref = ("F", (1, 2))
        store.cover([ref], pid=0)
        rec = store.record(ref)
        with pytest.raises(InvariantViolation, match="DIVIDED"):
            audit.audit_cover_transition(
                ref, (CubeStatus.DIVIDED, -1), rec, 0
            )
