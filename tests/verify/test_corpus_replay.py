"""Replay every checked-in fuzz repro (``tests/fuzz_corpus/``).

Each corpus entry records a network plus the path × core it once broke
(or a regression shape worth pinning).  Replaying asserts the recorded
coordinates pass all fuzz oracles — a repro added once stays fixed
forever.  Round-trip tests for save/load live here too.
"""

import os

import pytest

from repro.verify.corpus import load_corpus, replay_entry, save_repro
from repro.verify.fuzz import FuzzFailure

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "..", "fuzz_corpus")

_ENTRIES = load_corpus(CORPUS_DIR)


def test_corpus_is_seeded():
    assert len(_ENTRIES) >= 3


@pytest.mark.parametrize("entry", _ENTRIES, ids=lambda e: e.stem)
def test_replay(entry):
    outcome = replay_entry(entry)
    assert outcome is None, f"{entry.describe()} regressed: {outcome}"


class TestRoundTrip:
    def test_save_then_load_preserves_coordinates(self, tmp_path):
        failure = FuzzFailure(
            run=0, seed=17, family="dense", path="seq-pingpong", core="bit",
            kind="equivalence", detail="outputs differ",
            eqn="INORDER = a b;\nOUTORDER = F;\nF = a*b;\n", shrunk=True,
        )
        eqn_path = save_repro(str(tmp_path), failure)
        assert os.path.exists(eqn_path)
        (entry,) = load_corpus(str(tmp_path))
        assert entry.path == "seq-pingpong"
        assert entry.core == "bit"
        assert entry.seed == 17
        assert entry.kind == "equivalence"
        assert sorted(entry.network.inputs) == ["a", "b"]

    def test_missing_directory_is_empty_corpus(self, tmp_path):
        assert load_corpus(str(tmp_path / "nope")) == []

    def test_stem_is_filesystem_safe(self, tmp_path):
        failure = FuzzFailure(
            run=0, seed=1, family="weird/family", path="seq pingpong",
            core=None, kind="lc-bound", detail="",
            eqn="INORDER = a;\nOUTORDER = F;\nF = a;\n",
        )
        eqn_path = save_repro(str(tmp_path), failure)
        base = os.path.basename(eqn_path)
        assert "/" not in base.replace(".eqn", "") and " " not in base
