"""Differential fuzz driver: oracles, campaign bookkeeping, audits."""

import pytest

from repro.network.boolean_network import BooleanNetwork
from repro.verify import audit
from repro.verify.fuzz import FuzzConfig, check_path, run_fuzz
from repro.verify.paths import FactorPath, all_cores, all_paths, get_path


def _tiny_network():
    net = BooleanNetwork("tiny")
    net.add_inputs(["a", "b", "c", "d"])
    net.add_node("F", "ac + ad + bc + bd")
    net.add_output("F")
    return net


class TestCheckPath:
    @pytest.mark.parametrize("path", all_paths(), ids=lambda p: p.name)
    @pytest.mark.parametrize("core", all_cores())
    def test_all_real_paths_pass(self, path, core):
        outcome, final = check_path(_tiny_network(), path, core)
        assert outcome is None
        assert final is not None and final <= 8

    def test_exception_is_a_finding(self):
        def boom(network, core):
            raise RuntimeError("kaput")

        outcome, final = check_path(
            _tiny_network(), FactorPath("boom", True, boom)
        )
        assert final is None
        assert outcome[0] == "exception" and "kaput" in outcome[1]

    def test_nonequivalent_result_is_a_finding(self):
        def drop_cube(network, core):
            out = network.copy()
            out.nodes["F"] = out.nodes["F"][:1]
            return out

        outcome, _ = check_path(
            _tiny_network(), FactorPath("dropper", True, drop_cube)
        )
        assert outcome[0] == "equivalence"

    def test_literal_growth_is_a_finding(self):
        def bloat(network, core):
            out = network.copy()
            # F + F is functionally identical but strictly bigger.
            out.nodes["F"] = out.nodes["F"] + out.nodes["F"][:1]
            return out

        outcome, _ = check_path(
            _tiny_network(), FactorPath("bloat", True, bloat)
        )
        # Either the SOP dedupes (no finding is impossible: nodes[] is
        # raw cube list here) — the grown literal count must be flagged.
        assert outcome[0] == "lc-bound"

    def test_lost_output_is_a_finding(self):
        def lose_output(network, core):
            out = network.copy()
            del out.nodes["F"]
            out.outputs.remove("F")
            return out

        outcome, _ = check_path(
            _tiny_network(), FactorPath("loser", True, lose_output)
        )
        assert outcome[0] in ("exception", "interface")


class TestRunFuzz:
    def test_clean_small_campaign(self):
        config = FuzzConfig(runs=3, seed=0)
        report = run_fuzz(config)
        assert report.ok
        assert report.runs == 3
        assert report.checks == 3 * len(all_paths()) * len(all_cores())

    def test_path_and_core_filters(self):
        report = run_fuzz(
            FuzzConfig(runs=2, seed=5, paths=["seq-pingpong"], cores=["bit"])
        )
        assert report.ok and report.checks == 2

    def test_unknown_path_raises(self):
        with pytest.raises(ValueError, match="unknown factorization path"):
            run_fuzz(FuzzConfig(runs=1, paths=["nope"]))

    def test_audits_enabled_and_restored(self):
        prev = audit._enabled
        try:
            audit.set_audits(False)
            report = run_fuzz(
                FuzzConfig(runs=2, seed=0, audits=True,
                           paths=["seq-pingpong", "lshaped"])
            )
            assert report.ok
            assert audit._enabled is False  # restored after the campaign
        finally:
            audit.set_audits(prev)

    def test_progress_callback_sees_runs(self):
        lines = []
        run_fuzz(FuzzConfig(runs=2, seed=0, paths=["seq-pingpong"],
                            cores=["bit"], progress=lines.append))
        assert len(lines) == 2 and "family=" in lines[0]

    def test_report_render_mentions_counts(self):
        report = run_fuzz(FuzzConfig(runs=1, seed=0, paths=["seq-pingpong"]))
        text = report.render()
        assert "1 runs" in text and "0 failure(s)" in text
