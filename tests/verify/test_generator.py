"""Seeded fuzz-network generator: determinism, validity, family shapes."""

import pytest

from repro.network.eqn import write_eqn
from repro.verify.generator import (
    FAMILIES,
    MAX_INPUTS,
    family_for_run,
    random_network,
)


class TestDeterminism:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_same_seed_same_network(self, family):
        a = random_network(7, family=family)
        b = random_network(7, family=family)
        assert write_eqn(a) == write_eqn(b)

    def test_different_seeds_differ(self):
        texts = {write_eqn(random_network(s, family="dense")) for s in range(6)}
        assert len(texts) > 1

    def test_family_rotation_covers_all(self):
        seen = {family_for_run(i) for i in range(len(FAMILIES))}
        assert seen == set(FAMILIES)


class TestValidity:
    @pytest.mark.parametrize("family", FAMILIES)
    @pytest.mark.parametrize("seed", range(8))
    def test_generated_networks_validate(self, family, seed):
        net = random_network(seed, family=family)
        net.validate()
        assert net.nodes
        assert net.outputs
        # Every network stays exhaustively checkable (exact fuzz oracle).
        assert len(net.inputs) <= MAX_INPUTS

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="unknown fuzz family"):
            random_network(0, family="bogus")

    def test_custom_name(self):
        assert random_network(0, family="dense", name="abc").name == "abc"


class TestFamilyShapes:
    def test_dense_has_fat_nodes(self):
        # Dense SOPs: at least one node with several cubes.
        net = random_network(1, family="dense")
        assert max(len(f) for f in net.nodes.values()) >= 4

    def test_dupcube_repeats_cubes_across_nodes(self):
        # The shared cube pool must actually produce repeats somewhere in
        # a handful of seeds (cube duplicates within one SOP are merged).
        for seed in range(10):
            net = random_network(seed, family="dupcube")
            seen = set()
            for f in net.nodes.values():
                for cube in f:
                    names = tuple(sorted(net.table.name_of(l) for l in cube))
                    if names in seen:
                        return
                    seen.add(names)
        pytest.fail("no duplicated cube across nodes in 10 dupcube seeds")

    def test_degenerate_produces_small_shapes(self):
        # Degenerate family must hit single-cube or constant-0 nodes.
        for seed in range(10):
            net = random_network(seed, family="degenerate")
            if any(len(f) <= 1 for f in net.nodes.values()):
                return
        pytest.fail("no degenerate node shape in 10 seeds")
