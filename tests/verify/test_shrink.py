"""Greedy shrinker: convergence to a minimal repro, deterministic replay."""

from repro.network.boolean_network import BooleanNetwork, base_signal
from repro.network.eqn import read_eqn, write_eqn
from repro.verify.fuzz import check_path
from repro.verify.generator import random_network
from repro.verify.paths import FactorPath
from repro.verify.shrink import shrink_network


def _has_x0x1_cube(net: BooleanNetwork) -> bool:
    """Synthetic fault: some cube reads both x0 and x1 (any polarity)."""
    for f in net.nodes.values():
        for cube in f:
            bases = {base_signal(net.table.name_of(l)) for l in cube}
            if {"x0", "x1"} <= bases:
                return True
    return False


class TestSyntheticFault:
    def test_converges_to_minimal_repro(self):
        net = random_network(1, family="dense")
        assert _has_x0x1_cube(net)  # seed chosen so the fault is present
        small = shrink_network(net, _has_x0x1_cube)
        # 1-minimal for this predicate: one node, one 2-literal cube,
        # and only the inputs that cube reads.
        assert _has_x0x1_cube(small)
        assert len(small.nodes) == 1
        (f,) = small.nodes.values()
        assert len(f) == 1 and len(f[0]) == 2
        assert sorted(small.inputs) == ["x0", "x1"]
        small.validate()

    def test_shrink_is_deterministic(self):
        net = random_network(1, family="dense")
        a = shrink_network(net, _has_x0x1_cube)
        b = shrink_network(net, _has_x0x1_cube)
        assert write_eqn(a) == write_eqn(b)

    def test_emitted_eqn_replays_the_fault(self):
        net = random_network(1, family="dense")
        small = shrink_network(net, _has_x0x1_cube)
        replayed = read_eqn(write_eqn(small), name="replayed")
        assert _has_x0x1_cube(replayed)

    def test_input_not_mutated_and_nonfailing_returned_unchanged(self):
        net = random_network(2, family="sparse")
        before = write_eqn(net)
        shrink_network(net, _has_x0x1_cube if _has_x0x1_cube(net)
                       else lambda _n: False)
        assert write_eqn(net) == before
        # Predicate that never holds: the original object comes back.
        assert shrink_network(net, lambda _n: False) is net


class TestBrokenTransform:
    def test_shrinks_an_equivalence_failure(self):
        # A deliberately buggy "factorizer" that silently drops the last
        # cube of the fattest node — the shape of a real rectangle-cover
        # bookkeeping bug.  The shrinker must reduce the generated
        # network to a minimal case on which the oracle still trips.
        def buggy(network, core):
            out = network.copy()
            fat = max(out.nodes, key=lambda n: len(out.nodes[n]))
            out.nodes[fat] = out.nodes[fat][:-1]
            return out

        path = FactorPath("buggy", True, buggy)

        def still_fails(candidate):
            outcome, _ = check_path(candidate, path)
            return outcome is not None and outcome[0] == "equivalence"

        net = random_network(0, family="dense")
        assert still_fails(net)
        small = shrink_network(net, still_fails)
        assert still_fails(small)
        assert small.literal_count() < net.literal_count()
        # Minimal equivalence repro for "drops a cube": a single node —
        # and every literal of every cube is load-bearing for the fault.
        assert len(small.nodes) == 1
